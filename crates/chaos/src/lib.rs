//! Deterministic simulation testing for the serving stack, in the
//! style of FoundationDB's simulation harness.
//!
//! The engine is a pure function of a `u64` seed:
//!
//! 1. [`point::sample_point`] expands a seed into a [`point::ChaosPoint`]
//!    — a fully serializable coordinate in the joint space of serving
//!    path (single node / cluster / autoscale), fleet shape, TEE
//!    platform, KV policy, traffic model, fault schedule (including the
//!    gray `DegradedThroughput` / `StuckDrain` kinds), retry budget and
//!    admission tuning.
//! 2. [`run::run_point`] materializes the point into the real simulator
//!    configs, drives the corresponding PR-6 kernel loop, and checks
//!    the report against every applicable check in
//!    [`cllm_serve::invariants`] — one shared registry, the same
//!    definitions the simulators debug-assert and the CLI prints.
//! 3. On violation, [`shrink::shrink`] delta-debugs the point down to a
//!    minimal repro: drop fault events (ddmin), halve the horizon,
//!    shrink the fleet, strip optional subsystems — while the original
//!    violation keeps reproducing.
//! 4. [`repro::Repro`] serializes the shrunken point plus its expected
//!    digest and violations as JSON; `cllm chaos --repro <file>`
//!    replays it and demands a byte-identical report digest.
//!
//! Nothing here consults wall-clock time, thread identity, or global
//! state: the same seed produces the same point, report, digest and
//! shrink on every machine and under every `CLLM_RUNNER_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod point;
pub mod repro;
pub mod run;
pub mod shrink;

pub use point::{sample_point, ChaosPoint};
pub use repro::Repro;
pub use run::{run_point, RunOutcome};
pub use shrink::shrink;

/// SplitMix64: the engine's only entropy source. Self-contained so the
/// sampled space can never drift underneath checked-in repro files.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let x = (self.next_u64() >> 11) as f64;
        x / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer draw in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_a_pure_function_of_its_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::new(43).next_u64();
        assert_ne!(a[0], c, "different seeds must diverge immediately");
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
