//! Drive one [`ChaosPoint`] through the real simulator and check the
//! report against the unified invariant registry.

use cllm_serve::invariants::{self, InvariantViolation};
use cllm_serve::{autoscale, cluster, sim};
use serde::{Deserialize, Serialize};

use crate::point::{ChaosPoint, PathSpec};

/// The outcome of one chaos run: a digest of the full serialized
/// report (the byte-identity witness) plus every invariant violation
/// the registry found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// FNV-1a 64 over the report's JSON serialization, hex-encoded.
    /// Two runs of the same point must produce the same digest on any
    /// machine and thread setting.
    pub digest: String,
    /// Violations, in registry order. Empty means the point passed.
    pub violations: Vec<InvariantViolation>,
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests that completed.
    pub completed: usize,
}

/// FNV-1a 64 of `bytes`, hex-encoded.
#[must_use]
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

fn digest_of<T: Serialize>(report: &T) -> String {
    let json = serde_json::to_string(report).expect("reports serialize");
    fnv1a_hex(json.as_bytes())
}

/// Run `point` through its serving path and check every applicable
/// invariant. Deterministic: a pure function of the point.
#[must_use]
pub fn run_point(point: &ChaosPoint) -> RunOutcome {
    match &point.path {
        PathSpec::Single(p) => {
            let cfg = p.base.serving_config();
            let node = p.node.kind.serving_node();
            let plan = p.plan();
            let report = sim::simulate_serving_faulted(&cfg, &node, &plan);
            let mut violations = invariants::check_serving(&report);
            violations.extend(invariants::check_retry_budget(
                &report.records,
                plan.policy.max_retries,
            ));
            RunOutcome {
                digest: digest_of(&report),
                violations,
                arrivals: report.arrivals,
                completed: report.completed,
            }
        }
        PathSpec::Cluster(p) => {
            let cfg = p.config();
            let report = cluster::simulate_cluster(&cfg);
            let mut violations = invariants::check_cluster(&report);
            violations.extend(invariants::check_retry_budget(
                &report.records,
                cllm_serve::faults::RecoveryPolicy::default().max_retries,
            ));
            RunOutcome {
                digest: digest_of(&report),
                violations,
                arrivals: report.arrivals,
                completed: report.completed,
            }
        }
        PathSpec::Autoscale(p) => {
            let cfg = p.config();
            let report = autoscale::simulate_autoscale(&cfg);
            let mut violations = invariants::check_autoscale(&report);
            violations.extend(invariants::check_retry_budget(
                &report.records,
                cfg.retry.per_request,
            ));
            if p.forbid_aborts && report.aborted > 0 {
                violations.push(InvariantViolation::Forbidden {
                    rule: "forbid-aborts".to_string(),
                    detail: format!("{} requests aborted", report.aborted),
                });
            }
            RunOutcome {
                digest: digest_of(&report),
                violations,
                arrivals: report.arrivals,
                completed: report.completed,
            }
        }
        PathSpec::Infer(p) => {
            use cllm_infer::generate::Sampling;
            use cllm_infer::model::{Linear, TinyModel};

            let mut target = TinyModel::init(&p.config(), p.model_seed);
            if p.plant_nan_lm_head {
                if let Linear::F32(m) = &mut target.lm_head {
                    m.set(0, 0, f32::NAN);
                }
            }
            let draft = target.quantized();
            let sampling = match p.temperature {
                Some(t) => Sampling::Temperature(t),
                None => Sampling::Greedy,
            };
            let (tokens, stats) = cllm_infer::speculative::speculative_generate(
                &target,
                &draft,
                &p.prompt,
                p.max_new,
                p.draft_k,
                sampling,
                p.model_seed,
            );
            let report = invariants::InferLoopReport {
                requested: p.max_new,
                emitted: tokens.len(),
                drafted: stats.drafted,
                accepted: stats.accepted,
                resampled: stats.resampled,
                nonfinite_logits: stats.nonfinite_logits,
            };
            let violations = invariants::check_infer(&report);
            RunOutcome {
                // The emitted tokens are integer-exact (argmax/CDF
                // indices), so hashing them alongside the ledger keeps
                // the byte-identity witness without pinning any
                // machine-dependent float formatting.
                digest: digest_of(&(&tokens, &report)),
                violations,
                arrivals: p.max_new,
                completed: tokens.len(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::sample_point;

    #[test]
    fn runs_are_deterministic_per_seed() {
        for seed in 0..6 {
            let p = sample_point(seed);
            let a = run_point(&p);
            let b = run_point(&p);
            assert_eq!(a, b, "seed {seed} must replay byte-identically");
        }
    }

    #[test]
    fn pinned_seed_budget_finds_no_violations() {
        // The same budget CI's chaos smoke pins: every sampled point
        // must satisfy the whole registry.
        for seed in 0..24 {
            let p = sample_point(seed);
            let out = run_point(&p);
            assert!(
                out.violations.is_empty(),
                "seed {seed} violated: {}",
                invariants::describe(&out.violations)
            );
            assert!(out.arrivals > 0, "seed {seed} sampled an empty trace");
        }
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"chaos"), fnv1a_hex(b"chaos"));
        assert_ne!(fnv1a_hex(b"chaos"), fnv1a_hex(b"chao s"));
    }
}
