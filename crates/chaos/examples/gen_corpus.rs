//! Regenerate the checked-in chaos regression corpus:
//!
//! ```text
//! cargo run -p cllm-chaos --example gen_corpus -- tests/chaos_corpus
//! ```
//!
//! Writes one shrunken repro for the planted `forbid-aborts` violation
//! plus one clean digest pin per serving path (the first sampled seed
//! that drives each path). Every file is replayed as a tier-1
//! regression test by `tests/chaos_replay.rs`: a digest drift there
//! means simulator behaviour changed and the corpus (and likely the
//! golden snapshots) must be regenerated deliberately.

use cllm_chaos::point::{planted_demo, sample_point, PathSpec};
use cllm_chaos::repro::Repro;
use cllm_chaos::run::run_point;
use cllm_chaos::shrink::shrink;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/chaos_corpus".to_string());
    std::fs::create_dir_all(&dir).expect("corpus dir");

    // The planted violation, shrunken to its minimal repro.
    let (shrunk, outcome) = shrink(&planted_demo());
    assert!(
        !outcome.violations.is_empty(),
        "the planted point must violate"
    );
    write(
        &dir,
        "planted-forbid-aborts",
        &Repro::capture(shrunk, &outcome),
    );

    // One clean digest pin per path: the first sampled seed driving it.
    let mut pinned: Vec<&'static str> = Vec::new();
    for seed in 0.. {
        let point = sample_point(seed);
        let name = match &point.path {
            PathSpec::Single(_) => "clean-pin-single",
            PathSpec::Cluster(_) => "clean-pin-cluster",
            PathSpec::Autoscale(_) => "clean-pin-autoscale",
            // Infer digests hash real engine tokens, whose argmax can
            // shift with platform libm (sin/cos in RoPE); pin only the
            // simulator paths, whose arithmetic is libm-free.
            PathSpec::Infer(_) => continue,
        };
        if pinned.contains(&name) {
            continue;
        }
        let outcome = run_point(&point);
        assert!(
            outcome.violations.is_empty(),
            "seed {seed} unexpectedly violates: {:?}",
            outcome.violations
        );
        write(&dir, name, &Repro::capture(point, &outcome));
        pinned.push(name);
        if pinned.len() == 3 {
            break;
        }
    }
}

fn write(dir: &str, name: &str, repro: &Repro) {
    let path = format!("{dir}/{name}.json");
    std::fs::write(&path, repro.to_json()).expect("write corpus file");
    println!("wrote {path}");
}
