//! End-to-end shrinker proof: plant a violation, let the engine
//! shrink it, and demand a minimal repro that replays byte-identically.

use cllm_chaos::point::{planted_demo, PathSpec};
use cllm_chaos::repro::Repro;
use cllm_chaos::run::run_point;
use cllm_chaos::shrink::shrink;

#[test]
fn planted_violation_shrinks_to_a_minimal_repro() {
    let point = planted_demo();
    let original = run_point(&point);
    assert!(
        original.violations.iter().any(|v| v.label() == "forbidden"),
        "the planted rule must fire before shrinking: {:?}",
        original.violations
    );

    let (shrunk, outcome) = shrink(&point);
    let events = match &shrunk.path {
        PathSpec::Autoscale(p) => p.base_fleet.iter().map(|n| n.events.len()).sum::<usize>(),
        _ => unreachable!("shrinking never changes the path"),
    };
    assert!(
        events <= 3,
        "8 planted crashes must shrink to <= 3 events, got {events}"
    );
    assert!(
        outcome.violations.iter().any(|v| v.label() == "forbidden"),
        "the shrunken point must still violate the planted rule"
    );

    // The shrunken finding replays byte-identically through the repro
    // path — the same check `cllm chaos --repro` performs.
    let repro = Repro::capture(shrunk, &outcome);
    let json = repro.to_json();
    let back = Repro::from_json(&json).expect("repro parses");
    let replayed = back.replay().expect("repro replays byte-identically");
    assert_eq!(replayed.digest, outcome.digest);
}
