//! Speculative-decoding equivalence suite: speculative output must be
//! **token-identical** to vanilla autoregressive decode — for any draft
//! model, any window `k`, greedy and temperature sampling alike.
//!
//! The contract rests on one discipline (see `cllm_infer::generate`):
//! both decoders consume exactly one RNG draw per *emitted* token
//! through the shared `next_token`, so the draft can only change *how
//! fast* tokens appear, never *which* tokens appear. These tests sweep
//! draft quality from faithful (the target's own int8/int4 quantization)
//! to hostile (an unrelated random model) and pin the equivalence,
//! the acceptance-quality ordering, and the token-conservation
//! arithmetic the serve-layer invariants consume.
//!
//! The `CLLM_RUNNER_THREADS` pin lives here too: a single decode is a
//! strictly sequential cache-mutating loop with no thread interaction,
//! so the harness thread-count knob must not be able to change a single
//! token. No other test in this binary reads the variable, so the
//! process-global mutation cannot race.

use cllm_infer::generate::{generate, Sampling};
use cllm_infer::model::{TinyConfig, TinyModel};
use cllm_infer::speculative::speculative_generate;

fn target() -> TinyModel {
    TinyModel::init(&TinyConfig::test_small(), 2024)
}

/// Drafts spanning the quality spectrum, best to worst: the target's
/// own quantizations agree with it almost always, a differently-seeded
/// model almost never.
fn drafts(m: &TinyModel) -> Vec<(&'static str, TinyModel)> {
    vec![
        ("int8", m.quantized()),
        ("int4", m.quantized4()),
        ("naive-kernels", m.naive()),
        ("hostile", TinyModel::init(&TinyConfig::test_small(), 777)),
    ]
}

#[test]
fn greedy_is_token_identical_for_every_draft_and_every_k() {
    let m = target();
    let prompt = [3usize, 1, 4, 1, 5];
    let vanilla = generate(&m, &prompt, 16, Sampling::Greedy, 0);
    for (name, draft) in drafts(&m) {
        for k in 1..=6 {
            let (spec, stats) =
                speculative_generate(&m, &draft, &prompt, 16, k, Sampling::Greedy, 0);
            assert_eq!(spec, vanilla, "draft {name}, k={k}: tokens diverged");
            assert_eq!(stats.emitted(), 16, "draft {name}, k={k}");
            assert_eq!(stats.nonfinite_logits, 0, "draft {name}, k={k}");
        }
    }
}

#[test]
fn temperature_sampling_matches_draw_for_draw() {
    // Under temperature sampling the emitted sequence is a function of
    // the seed alone; acceptance/rejection must consume RNG draws in
    // exactly the vanilla order or the tail of the sequence shears off.
    let m = target();
    let prompt = [9usize, 2, 6];
    for temp in [0.7f32, 1.0, 1.3] {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let vanilla = generate(&m, &prompt, 12, Sampling::Temperature(temp), seed);
            for (name, draft) in drafts(&m) {
                let (spec, _) = speculative_generate(
                    &m,
                    &draft,
                    &prompt,
                    12,
                    3,
                    Sampling::Temperature(temp),
                    seed,
                );
                assert_eq!(spec, vanilla, "draft {name}, temp {temp}, seed {seed}");
            }
        }
    }
}

#[test]
fn draft_quality_orders_acceptance_and_round_count() {
    // Equivalence holds regardless of draft quality; *throughput* is
    // where quality shows. The target's own int8 quantization should be
    // accepted far more often than an unrelated model, which in turn
    // means fewer verification rounds for the same emitted tokens.
    let m = target();
    let prompt = [5usize, 5, 5];
    let (_, good) = speculative_generate(&m, &m.quantized(), &prompt, 24, 4, Sampling::Greedy, 0);
    let hostile = TinyModel::init(&TinyConfig::test_small(), 777);
    let (_, bad) = speculative_generate(&m, &hostile, &prompt, 24, 4, Sampling::Greedy, 0);
    assert!(
        good.acceptance_rate() > bad.acceptance_rate(),
        "int8 draft acceptance {:.2} should beat hostile {:.2}",
        good.acceptance_rate(),
        bad.acceptance_rate()
    );
    assert!(
        good.rounds <= bad.rounds,
        "better drafts cannot need more rounds: {} vs {}",
        good.rounds,
        bad.rounds
    );
}

#[test]
fn token_conservation_holds_for_every_draft_and_k() {
    // Every emitted token is exactly one of {accepted draft, target
    // resample} — the arithmetic the serve-layer token-conservation
    // invariant audits. Resamples are bounded by rounds (at most one
    // rejection ends each round).
    let m = target();
    for (name, draft) in drafts(&m) {
        for k in [1usize, 2, 5] {
            for max_new in [1usize, 7, 19] {
                let (out, stats) =
                    speculative_generate(&m, &draft, &[8, 0], max_new, k, Sampling::Greedy, 3);
                let ctx = format!("draft {name}, k={k}, max_new={max_new}");
                assert_eq!(out.len(), max_new, "{ctx}");
                assert_eq!(stats.emitted(), out.len(), "{ctx}");
                assert!(stats.accepted <= stats.drafted, "{ctx}");
                assert!(stats.resampled <= stats.rounds, "{ctx}");
                assert!(stats.rounds >= max_new.div_ceil(k + 1), "{ctx}");
            }
        }
    }
}

#[test]
fn empty_and_single_token_prompts_stay_equivalent() {
    let m = target();
    let draft = m.quantized();
    for prompt in [&[][..], &[0usize][..], &[255usize][..]] {
        let vanilla = generate(&m, prompt, 8, Sampling::Greedy, 0);
        let (spec, _) = speculative_generate(&m, &draft, prompt, 8, 2, Sampling::Greedy, 0);
        assert_eq!(spec, vanilla, "prompt {prompt:?}");
    }
}

#[test]
fn runner_thread_knob_cannot_change_a_token() {
    // A single decode is a sequential loop over one KV cache; the
    // harness-level CLLM_RUNNER_THREADS knob parallelizes *experiments*,
    // never a decode, and this pins that a thread-count change can
    // never alter generated tokens.
    let m = target();
    let draft = m.quantized();
    let prompt = [1usize, 2, 3];
    let run_both = |threads: &str| {
        std::env::set_var("CLLM_RUNNER_THREADS", threads);
        let vanilla = generate(&m, &prompt, 10, Sampling::Temperature(1.1), 9);
        let (spec, _) =
            speculative_generate(&m, &draft, &prompt, 10, 3, Sampling::Temperature(1.1), 9);
        (vanilla, spec)
    };
    let (vanilla_1, spec_1) = run_both("1");
    let (vanilla_8, spec_8) = run_both("8");
    std::env::remove_var("CLLM_RUNNER_THREADS");
    assert_eq!(
        vanilla_1, vanilla_8,
        "vanilla decode varies with thread knob"
    );
    assert_eq!(spec_1, spec_8, "speculative decode varies with thread knob");
    assert_eq!(spec_1, vanilla_1, "speculative diverged from vanilla");
}

#[test]
#[should_panic(expected = "share a vocabulary")]
fn mismatched_vocabularies_are_rejected() {
    let m = target();
    let mut cfg = TinyConfig::test_small();
    cfg.vocab = 128;
    let alien = TinyModel::init(&cfg, 1);
    let _ = speculative_generate(&m, &alien, &[1], 4, 2, Sampling::Greedy, 0);
}
