//! Property-based equivalence suite for the `cllm-infer` kernels.
//!
//! The fast paths (`gemv_tiled`, `gemm`, the fused quantized dots) are
//! only allowed to exist because they are provably interchangeable with
//! the slow reference paths. This suite pins those contracts over
//! randomized shapes — including the awkward ones: dimensions that are
//! not multiples of [`LANES`] or [`TILE_ROWS`], single elements, and
//! ragged quantization groups.
//!
//! * tiled ≡ naive GEMV within `1e-5` relative error (different
//!   summation order, same value up to f32 rounding);
//! * `gemm` ≡ per-row `gemv_tiled` **bit-identical** (they share
//!   `dot_lanes`, so batching must not change a single ULP);
//! * quantization round-trips inside its analytical error bound
//!   (`max|group|/254` for int8, `max|group|/14` for int4) and the
//!   fused dot matches the dequantize-then-multiply reference;
//! * `rmsnorm` / `softmax` / `rope` satisfy their defining invariants.

use cllm_infer::kernels::{
    argmax, gemm, gemv, gemv_tiled, rmsnorm, rope, softmax, LANES, TILE_ROWS,
};
use cllm_infer::quant::{Quant4Matrix, QuantMatrix, GROUP};
use cllm_infer::tensor::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random values in roughly `[-4, 4]` from an LCG,
/// so a `(dims, seed)` pair fully describes a failing case.
fn lcg_values(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            #[allow(clippy::cast_precision_loss)]
            let unit = f64::from(state >> 8) / f64::from(1u32 << 24);
            #[allow(clippy::cast_possible_truncation)]
            {
                (unit * 8.0 - 4.0) as f32
            }
        })
        .collect()
}

fn lcg_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
    Matrix::from_vec(rows, cols, lcg_values(rows * cols, seed))
}

/// Column counts that stress the lane machinery: tiny, one element
/// short of / exactly / one past a lane block, a full quantization
/// group boundary, and generic sizes.
fn cols_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..5,
        (LANES - 2)..(LANES + 3),
        (2 * GROUP - 2)..(2 * GROUP + 3),
        1usize..200,
    ]
}

/// Row counts around the [`TILE_ROWS`] blocking factor plus generic.
fn rows_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..=TILE_ROWS + 1, 1usize..24]
}

proptest! {
    #[test]
    fn tiled_gemv_matches_naive_within_1e5(rows in rows_strategy(),
                                           cols in cols_strategy(),
                                           seed in any::<u32>()) {
        let w = lcg_matrix(rows, cols, seed);
        let x = lcg_values(cols, seed.wrapping_add(1));
        let mut fast = vec![0.0f32; rows];
        let mut slow = vec![0.0f32; rows];
        gemv_tiled(&x, &w, &mut fast);
        gemv(&x, &w, &mut slow);
        for (r, (f, s)) in fast.iter().zip(&slow).enumerate() {
            // Rounding error of either summation order is bounded by the
            // magnitude of the terms, not of the (possibly cancelling)
            // result — so that's the right scale for "1e-5 relative".
            let scale: f32 = x
                .iter()
                .zip(w.row(r))
                .map(|(a, b)| (a * b).abs())
                .sum::<f32>()
                .max(1.0);
            prop_assert!(
                (f - s).abs() / scale <= 1e-5,
                "row {r}: tiled {f} vs naive {s} ({rows}x{cols}, seed {seed})"
            );
        }
    }

    #[test]
    fn gemm_is_bit_identical_to_tiled_gemv_per_row(batch in 1usize..6,
                                                   rows in rows_strategy(),
                                                   cols in cols_strategy(),
                                                   seed in any::<u32>()) {
        let w = lcg_matrix(rows, cols, seed);
        let xs = lcg_matrix(batch, cols, seed.wrapping_add(7));
        let mut batched = Matrix::zeros(batch, rows);
        gemm(&xs, &w, &mut batched);
        for b in 0..batch {
            let mut single = vec![0.0f32; rows];
            gemv_tiled(xs.row(b), &w, &mut single);
            for (r, (got, want)) in batched.row(b).iter().zip(&single).enumerate() {
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "batch {} row {}: gemm {} != gemv_tiled {} ({}x{}, seed {})",
                    b, r, got, want, rows, cols, seed
                );
            }
        }
    }

    #[test]
    fn int8_roundtrip_stays_inside_the_group_error_bound(rows in rows_strategy(),
                                                         cols in cols_strategy(),
                                                         seed in any::<u32>()) {
        let m = lcg_matrix(rows, cols, seed);
        let q = QuantMatrix::quantize(&m);
        let back = q.dequantize();
        for r in 0..rows {
            let row = m.row(r);
            for g in 0..cols.div_ceil(GROUP) {
                let start = g * GROUP;
                let end = (start + GROUP).min(cols);
                let max = row[start..end].iter().fold(0.0f32, |a, v| a.max(v.abs()));
                // Round-to-nearest against scale max/127 errs by at most
                // half a step; a hair of f32 slack on the divide/multiply.
                let bound = max / 254.0 + 1e-6;
                for c in start..end {
                    let err = (back.get(r, c) - m.get(r, c)).abs();
                    prop_assert!(
                        err <= bound,
                        "int8 ({r},{c}): err {err} > bound {bound} ({rows}x{cols}, seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn int4_roundtrip_stays_inside_the_group_error_bound(rows in rows_strategy(),
                                                         cols in cols_strategy(),
                                                         seed in any::<u32>()) {
        let m = lcg_matrix(rows, cols, seed);
        let q = Quant4Matrix::quantize(&m);
        let back = q.dequantize();
        for r in 0..rows {
            let row = m.row(r);
            for g in 0..cols.div_ceil(GROUP) {
                let start = g * GROUP;
                let end = (start + GROUP).min(cols);
                let max = row[start..end].iter().fold(0.0f32, |a, v| a.max(v.abs()));
                let bound = max / 14.0 + 1e-6;
                for c in start..end {
                    let err = (back.get(r, c) - m.get(r, c)).abs();
                    prop_assert!(
                        err <= bound,
                        "int4 ({r},{c}): err {err} > bound {bound} ({rows}x{cols}, seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_quant_dot_matches_dequantized_reference(rows in rows_strategy(),
                                                     cols in cols_strategy(),
                                                     seed in any::<u32>()) {
        let m = lcg_matrix(rows, cols, seed);
        let x = lcg_values(cols, seed.wrapping_add(3));
        let q8 = QuantMatrix::quantize(&m);
        let q4 = Quant4Matrix::quantize(&m);
        for (label, q_out, reference) in [
            ("int8", {
                let mut out = vec![0.0f32; rows];
                q8.gemv(&x, &mut out);
                out
            }, q8.dequantize()),
            ("int4", {
                let mut out = vec![0.0f32; rows];
                q4.gemv(&x, &mut out);
                out
            }, q4.dequantize()),
        ] {
            // The fused kernel folds the scale per product; the reference
            // materializes f32 weights then dots. Same value up to f32
            // accumulation-order rounding.
            let mut want = vec![0.0f32; rows];
            gemv_tiled(&x, &reference, &mut want);
            for (r, (got, w)) in q_out.iter().zip(&want).enumerate() {
                let denom = w.abs().max(1.0);
                prop_assert!(
                    (got - w).abs() / denom <= 1e-4,
                    "{label} row {r}: fused {got} vs reference {w} ({rows}x{cols}, seed {seed})"
                );
            }
        }
    }

    #[test]
    fn quant_storage_is_exact_and_beats_f32(rows in rows_strategy(),
                                            cols in cols_strategy(),
                                            seed in any::<u32>()) {
        let m = lcg_matrix(rows, cols, seed);
        let groups = cols.div_ceil(GROUP).max(1);
        let q8 = QuantMatrix::quantize(&m);
        let q4 = Quant4Matrix::quantize(&m);
        prop_assert_eq!(q8.storage_bytes(), rows * cols + rows * groups * 4);
        prop_assert_eq!(q4.storage_bytes(), rows * cols.div_ceil(2) + rows * groups * 4);
        // For real weight shapes (>= one full group per row) the scale
        // overhead is small and the compression must materialize.
        if cols >= GROUP {
            let f32_bytes = rows * cols * 4;
            prop_assert!(q8.storage_bytes() * 3 < f32_bytes);
            prop_assert!(q4.storage_bytes() * 2 < q8.storage_bytes() * 3);
        }
    }

    #[test]
    fn softmax_is_a_distribution_and_preserves_order(n in 1usize..80,
                                                     seed in any::<u32>()) {
        let logits = lcg_values(n, seed);
        let mut probs = logits.clone();
        softmax(&mut probs);
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() <= 1e-4, "sum {sum}");
        for (i, p) in probs.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(p), "p[{i}] = {p}");
        }
        // exp is strictly monotone, so every pairwise order survives.
        for i in 0..n {
            for j in (i + 1)..n {
                prop_assert_eq!(
                    logits[i] > logits[j],
                    probs[i] > probs[j],
                    "order flip at ({}, {})", i, j
                );
            }
        }
        prop_assert_eq!(argmax(&logits), argmax(&probs));
    }

    #[test]
    fn rmsnorm_matches_its_f64_definition(n in 1usize..80, seed in any::<u32>()) {
        let x = lcg_values(n, seed);
        let gain = lcg_values(n, seed.wrapping_add(9));
        let eps = 1e-5f32;
        let mut got = x.clone();
        rmsnorm(&mut got, &gain, eps);
        #[allow(clippy::cast_precision_loss)]
        let ms: f64 = x.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>() / n as f64;
        let inv = 1.0 / (ms + f64::from(eps)).sqrt();
        for i in 0..n {
            #[allow(clippy::cast_possible_truncation)]
            let want = (f64::from(x[i]) * inv * f64::from(gain[i])) as f32;
            prop_assert!(
                (got[i] - want).abs() <= want.abs().max(1.0) * 1e-5,
                "rmsnorm[{i}]: {} vs {want}", got[i]
            );
        }
    }

    #[test]
    fn rope_preserves_norm_and_is_identity_at_pos_zero(half in 1usize..16,
                                                       pos in 0usize..512,
                                                       seed in any::<u32>()) {
        let d = half * 2;
        let original = lcg_values(d, seed);

        let mut at_zero = original.clone();
        rope(&mut at_zero, 0, 10000.0);
        // angle = 0 for every pair: cos 1, sin 0, bit-exact identity.
        prop_assert_eq!(&at_zero, &original);

        let mut rotated = original.clone();
        rope(&mut rotated, pos, 10000.0);
        // A rotation preserves each pair's (and hence the head's) norm.
        for i in 0..half {
            let before = f64::from(original[2 * i]).hypot(f64::from(original[2 * i + 1]));
            let after = f64::from(rotated[2 * i]).hypot(f64::from(rotated[2 * i + 1]));
            prop_assert!(
                (before - after).abs() <= before.max(1.0) * 1e-5,
                "pair {i}: |before| {before} vs |after| {after} (pos {pos})"
            );
        }
    }
}

/// Deterministic edge cases the strategies above could only hit by
/// luck: exact lane/tile boundaries and degenerate one-element shapes.
#[test]
fn exact_boundary_shapes_agree_across_all_gemv_paths() {
    for (rows, cols) in [
        (1, 1),
        (TILE_ROWS, LANES),
        (TILE_ROWS + 1, LANES + 1),
        (TILE_ROWS - 1, LANES - 1),
        (2 * TILE_ROWS, 2 * GROUP),
        (3, GROUP + LANES / 2),
    ] {
        let w = lcg_matrix(rows, cols, 42);
        let x = lcg_values(cols, 43);
        let mut fast = vec![0.0f32; rows];
        let mut slow = vec![0.0f32; rows];
        gemv_tiled(&x, &w, &mut fast);
        gemv(&x, &w, &mut slow);
        for (f, s) in fast.iter().zip(&slow) {
            assert!(
                (f - s).abs() / s.abs().max(1.0) <= 1e-5,
                "{rows}x{cols}: {f} vs {s}"
            );
        }
    }
}

#[test]
fn all_zero_group_quantizes_and_reconstructs_exactly() {
    // The zero group takes the scale-1.0 fallback; every code is 0 and
    // the round-trip is exact, not merely inside the bound.
    let m = Matrix::zeros(2, GROUP + 3);
    let q8 = QuantMatrix::quantize(&m);
    let q4 = Quant4Matrix::quantize(&m);
    assert_eq!(q8.dequantize().as_slice(), m.as_slice());
    assert_eq!(q4.dequantize().as_slice(), m.as_slice());
}
