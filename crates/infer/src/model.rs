//! A Llama-architecture decoder at arbitrary (tiny) scale.

use crate::kernels::{gemv, rmsnorm, rope, softmax};
use crate::quant::QuantMatrix;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Architecture hyperparameters (a miniature `cllm_workload::ModelConfig`).
#[derive(Debug, Clone, PartialEq)]
pub struct TinyConfig {
    /// Hidden dimension.
    pub hidden: usize,
    /// Decoder blocks.
    pub layers: usize,
    /// Query heads.
    pub heads: usize,
    /// KV heads (grouped-query attention when < heads).
    pub kv_heads: usize,
    /// Gated-MLP intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length the KV cache allocates for.
    pub max_seq: usize,
    /// RoPE base.
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub eps: f32,
}

impl TinyConfig {
    /// A small config for fast tests: 64 hidden, 2 layers, GQA 4:2.
    #[must_use]
    pub fn test_small() -> Self {
        TinyConfig {
            hidden: 64,
            layers: 2,
            heads: 4,
            kv_heads: 2,
            intermediate: 172,
            vocab: 256,
            max_seq: 128,
            rope_theta: 10000.0,
            eps: 1e-5,
        }
    }

    /// Per-head dimension.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// K/V projection width.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }
}

/// A linear layer in either precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Linear {
    /// Full-precision weights.
    F32(Matrix),
    /// Int8-quantized weights (per-row scales).
    Int8(QuantMatrix),
}

impl Linear {
    /// `out = x · W^T`.
    pub fn apply(&self, x: &[f32], out: &mut [f32]) {
        match self {
            Linear::F32(m) => gemv(x, m, out),
            Linear::Int8(q) => q.gemv(x, out),
        }
    }

    /// Output dimension.
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            Linear::F32(m) => m.rows,
            Linear::Int8(q) => q.rows,
        }
    }
}

/// Weights of one decoder block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockWeights {
    /// Pre-attention RMSNorm gain.
    pub input_norm: Vec<f32>,
    /// Query projection (`hidden x hidden`).
    pub wq: Linear,
    /// Key projection (`kv_dim x hidden`).
    pub wk: Linear,
    /// Value projection (`kv_dim x hidden`).
    pub wv: Linear,
    /// Output projection (`hidden x hidden`).
    pub wo: Linear,
    /// Post-attention RMSNorm gain.
    pub post_norm: Vec<f32>,
    /// Gate projection (`intermediate x hidden`).
    pub w_gate: Linear,
    /// Up projection (`intermediate x hidden`).
    pub w_up: Linear,
    /// Down projection (`hidden x intermediate`).
    pub w_down: Linear,
}

/// The full model.
#[derive(Debug, Clone, PartialEq)]
pub struct TinyModel {
    /// Hyperparameters.
    pub config: TinyConfig,
    /// Token embedding table (`vocab x hidden`).
    pub embed: Matrix,
    /// Decoder blocks.
    pub blocks: Vec<BlockWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// LM head (`vocab x hidden`).
    pub lm_head: Linear,
}

/// Per-layer KV cache.
#[derive(Debug, Clone)]
pub struct KvCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    /// Tokens currently cached.
    pub len: usize,
    /// Width of one token's K (or V) entry.
    pub kv_dim: usize,
}

impl KvCache {
    fn new(config: &TinyConfig) -> Self {
        KvCache {
            k: vec![Vec::with_capacity(config.max_seq * config.kv_dim()); config.layers],
            v: vec![Vec::with_capacity(config.max_seq * config.kv_dim()); config.layers],
            len: 0,
            kv_dim: config.kv_dim(),
        }
    }

    /// KV bytes currently held (f32).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.k.iter().map(Vec::len).sum::<usize>() * 8
    }

    /// Serialize the cache (for sealing/migrating a live session).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"CKVC");
        out.extend_from_slice(&(self.len as u32).to_le_bytes());
        out.extend_from_slice(&(self.kv_dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.k.len() as u32).to_le_bytes());
        for layer in self.k.iter().chain(self.v.iter()) {
            out.extend_from_slice(&(layer.len() as u32).to_le_bytes());
            for v in layer {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Restore a cache serialized by [`KvCache::to_bytes`]. Returns `None`
    /// on a malformed or internally inconsistent buffer.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let end = pos.checked_add(n)?;
            if end > bytes.len() {
                return None;
            }
            let s = &bytes[*pos..end];
            *pos = end;
            Some(s)
        };
        if take(&mut pos, 4)? != b"CKVC" {
            return None;
        }
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let kv_dim = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let layers = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let read_layer = |pos: &mut usize| -> Option<Vec<f32>> {
            let n = u32::from_le_bytes(take(pos, 4)?.try_into().ok()?) as usize;
            if n != len * kv_dim {
                return None;
            }
            let raw = take(pos, n * 4)?;
            Some(
                raw.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                    .collect(),
            )
        };
        let k: Option<Vec<Vec<f32>>> = (0..layers).map(|_| read_layer(&mut pos)).collect();
        let v: Option<Vec<Vec<f32>>> = (0..layers).map(|_| read_layer(&mut pos)).collect();
        if pos != bytes.len() {
            return None;
        }
        Some(KvCache {
            k: k?,
            v: v?,
            len,
            kv_dim,
        })
    }
}

fn init_matrix(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        // Uniform in [-scale, scale] — adequate for a functional model.
        data.push((rng.random::<f32>() * 2.0 - 1.0) * scale);
    }
    Matrix::from_vec(rows, cols, data)
}

impl TinyModel {
    /// Deterministically initialize a model from `seed`.
    #[must_use]
    pub fn init(config: &TinyConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = config.hidden;
        let kv = config.kv_dim();
        let inter = config.intermediate;
        #[allow(clippy::cast_precision_loss)]
        let scale = 1.0 / (h as f32).sqrt();
        let blocks = (0..config.layers)
            .map(|_| BlockWeights {
                input_norm: vec![1.0; h],
                wq: Linear::F32(init_matrix(&mut rng, h, h, scale)),
                wk: Linear::F32(init_matrix(&mut rng, kv, h, scale)),
                wv: Linear::F32(init_matrix(&mut rng, kv, h, scale)),
                wo: Linear::F32(init_matrix(&mut rng, h, h, scale)),
                post_norm: vec![1.0; h],
                w_gate: Linear::F32(init_matrix(&mut rng, inter, h, scale)),
                w_up: Linear::F32(init_matrix(&mut rng, inter, h, scale)),
                w_down: Linear::F32(init_matrix(&mut rng, h, inter, scale)),
            })
            .collect();
        TinyModel {
            config: config.clone(),
            embed: init_matrix(&mut rng, config.vocab, h, 0.1),
            blocks,
            final_norm: vec![1.0; h],
            lm_head: Linear::F32(init_matrix(&mut rng, config.vocab, h, scale)),
        }
    }

    /// Quantize all linear layers to int8 (embedding and norms stay f32,
    /// as in the paper's deployments).
    #[must_use]
    pub fn quantized(&self) -> TinyModel {
        fn q(l: &Linear) -> Linear {
            match l {
                Linear::F32(m) => Linear::Int8(QuantMatrix::quantize(m)),
                Linear::Int8(qm) => Linear::Int8(qm.clone()),
            }
        }
        TinyModel {
            config: self.config.clone(),
            embed: self.embed.clone(),
            blocks: self
                .blocks
                .iter()
                .map(|b| BlockWeights {
                    input_norm: b.input_norm.clone(),
                    wq: q(&b.wq),
                    wk: q(&b.wk),
                    wv: q(&b.wv),
                    wo: q(&b.wo),
                    post_norm: b.post_norm.clone(),
                    w_gate: q(&b.w_gate),
                    w_up: q(&b.w_up),
                    w_down: q(&b.w_down),
                })
                .collect(),
            final_norm: self.final_norm.clone(),
            lm_head: q(&self.lm_head),
        }
    }

    /// Fresh KV cache.
    #[must_use]
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(&self.config)
    }

    /// Process one token at position `cache.len`, append to the cache and
    /// return the next-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `token >= vocab` or the cache is full.
    #[must_use]
    pub fn forward(&self, token: usize, cache: &mut KvCache) -> Vec<f32> {
        let cfg = &self.config;
        assert!(token < cfg.vocab, "token {token} out of vocabulary");
        assert!(cache.len < cfg.max_seq, "KV cache full");
        let pos = cache.len;
        let h = cfg.hidden;
        let hd = cfg.head_dim();
        let kvd = cfg.kv_dim();
        let group = cfg.heads / cfg.kv_heads;

        let mut x: Vec<f32> = self.embed.row(token).to_vec();

        for (layer, block) in self.blocks.iter().enumerate() {
            // Attention sub-block.
            let mut normed = x.clone();
            rmsnorm(&mut normed, &block.input_norm, cfg.eps);

            let mut q = vec![0.0; h];
            let mut k = vec![0.0; kvd];
            let mut v = vec![0.0; kvd];
            block.wq.apply(&normed, &mut q);
            block.wk.apply(&normed, &mut k);
            block.wv.apply(&normed, &mut v);

            for head in 0..cfg.heads {
                rope(&mut q[head * hd..(head + 1) * hd], pos, cfg.rope_theta);
            }
            for head in 0..cfg.kv_heads {
                rope(&mut k[head * hd..(head + 1) * hd], pos, cfg.rope_theta);
            }

            cache.k[layer].extend_from_slice(&k);
            cache.v[layer].extend_from_slice(&v);
            let seq = pos + 1;

            let mut attn_out = vec![0.0; h];
            #[allow(clippy::cast_precision_loss)]
            let inv_sqrt_d = 1.0 / (hd as f32).sqrt();
            for head in 0..cfg.heads {
                let kv_head = head / group;
                let qh = &q[head * hd..(head + 1) * hd];
                // Scores against all cached keys of this kv head.
                let mut scores = Vec::with_capacity(seq);
                for t in 0..seq {
                    let kh = &cache.k[layer][t * kvd + kv_head * hd..t * kvd + (kv_head + 1) * hd];
                    let dot: f32 = qh.iter().zip(kh).map(|(a, b)| a * b).sum();
                    scores.push(dot * inv_sqrt_d);
                }
                softmax(&mut scores);
                let out = &mut attn_out[head * hd..(head + 1) * hd];
                for (t, w) in scores.iter().enumerate() {
                    let vh = &cache.v[layer][t * kvd + kv_head * hd..t * kvd + (kv_head + 1) * hd];
                    for (o, val) in out.iter_mut().zip(vh) {
                        *o += w * val;
                    }
                }
            }

            let mut proj = vec![0.0; h];
            block.wo.apply(&attn_out, &mut proj);
            for (xi, p) in x.iter_mut().zip(&proj) {
                *xi += p;
            }

            // MLP sub-block.
            let mut normed = x.clone();
            rmsnorm(&mut normed, &block.post_norm, cfg.eps);
            let inter = cfg.intermediate;
            let mut gate = vec![0.0; inter];
            let mut up = vec![0.0; inter];
            block.w_gate.apply(&normed, &mut gate);
            block.w_up.apply(&normed, &mut up);
            for (g, u) in gate.iter_mut().zip(&up) {
                *g = crate::kernels::silu(*g) * u;
            }
            let mut down = vec![0.0; h];
            block.w_down.apply(&gate, &mut down);
            for (xi, d) in x.iter_mut().zip(&down) {
                *xi += d;
            }
        }

        cache.len += 1;

        rmsnorm(&mut x, &self.final_norm, cfg.eps);
        let mut logits = vec![0.0; cfg.vocab];
        self.lm_head.apply(&x, &mut logits);
        logits
    }

    /// Approximate parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        let c = &self.config;
        let block = c.hidden * c.hidden * 2
            + c.hidden * c.kv_dim() * 2
            + 3 * c.hidden * c.intermediate
            + 2 * c.hidden;
        2 * c.vocab * c.hidden + c.layers * block + c.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TinyModel {
        TinyModel::init(&TinyConfig::test_small(), 1234)
    }

    #[test]
    fn deterministic_init() {
        let a = model();
        let b = model();
        assert_eq!(a.embed, b.embed);
        assert_eq!(a.blocks.len(), 2);
    }

    #[test]
    fn forward_produces_finite_logits() {
        let m = model();
        let mut cache = m.new_cache();
        let logits = m.forward(7, &mut cache);
        assert_eq!(logits.len(), 256);
        assert!(logits.iter().all(|v| v.is_finite()));
        assert_eq!(cache.len, 1);
    }

    #[test]
    fn context_changes_predictions() {
        // The same token after different histories must yield different
        // logits — i.e. attention actually attends.
        let m = model();
        let mut c1 = m.new_cache();
        let _ = m.forward(5, &mut c1);
        let l1 = m.forward(9, &mut c1);
        let mut c2 = m.new_cache();
        let _ = m.forward(6, &mut c2);
        let l2 = m.forward(9, &mut c2);
        let diff: f32 = l1.iter().zip(&l2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "history had no effect: diff {diff}");
    }

    #[test]
    fn cache_prefix_consistency() {
        // Feeding [a, b, c] one at a time must match feeding [a, b] then c
        // in a fresh cache (incremental KV caching is exact).
        let m = model();
        let mut full = m.new_cache();
        let _ = m.forward(1, &mut full);
        let _ = m.forward(2, &mut full);
        let l_full = m.forward(3, &mut full);

        let mut replay = m.new_cache();
        let _ = m.forward(1, &mut replay);
        let _ = m.forward(2, &mut replay);
        let l_replay = m.forward(3, &mut replay);
        assert_eq!(l_full, l_replay);
    }

    #[test]
    fn quantized_model_tracks_f32() {
        let m = model();
        let q = m.quantized();
        let mut cf = m.new_cache();
        let mut cq = q.new_cache();
        let lf = m.forward(42, &mut cf);
        let lq = q.forward(42, &mut cq);
        // Correlation between f32 and int8 logits should be strong.
        let dot: f32 = lf.iter().zip(&lq).map(|(a, b)| a * b).sum();
        let nf: f32 = lf.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nq: f32 = lq.iter().map(|v| v * v).sum::<f32>().sqrt();
        let corr = dot / (nf * nq);
        assert!(corr > 0.98, "correlation {corr}");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_out_of_vocab() {
        let m = model();
        let mut cache = m.new_cache();
        let _ = m.forward(9999, &mut cache);
    }

    #[test]
    fn gqa_grouping_works() {
        // test_small uses 4 heads over 2 kv heads; forward must not panic
        // and kv cache width must be kv_dim.
        let m = model();
        let mut cache = m.new_cache();
        let _ = m.forward(0, &mut cache);
        assert_eq!(cache.k[0].len(), m.config.kv_dim());
    }

    #[test]
    fn kv_cache_migration_is_exact() {
        // Seal-and-migrate: a restored cache continues generation exactly
        // where the original left off.
        let m = model();
        let mut original = m.new_cache();
        for t in [5usize, 9, 3, 14] {
            let _ = m.forward(t, &mut original);
        }
        let restored = KvCache::from_bytes(&original.to_bytes()).unwrap();
        let mut a = original.clone();
        let mut b = restored;
        assert_eq!(m.forward(21, &mut a), m.forward(21, &mut b));
    }

    #[test]
    fn kv_cache_rejects_garbage() {
        assert!(KvCache::from_bytes(b"junk").is_none());
        let m = model();
        let mut c = m.new_cache();
        let _ = m.forward(1, &mut c);
        let mut bytes = c.to_bytes();
        bytes.pop();
        assert!(KvCache::from_bytes(&bytes).is_none());
        bytes.push(0);
        bytes.push(0);
        assert!(KvCache::from_bytes(&bytes).is_none());
    }

    #[test]
    fn param_count_plausible() {
        let m = model();
        let p = m.param_count();
        assert!(p > 50_000 && p < 500_000, "params {p}");
    }
}
