//! A Llama-architecture decoder at arbitrary (tiny) scale.
//!
//! Decode has three entry points that are **bit-identical** per token
//! (they all reduce every `(weight row, input row)` pair with the same
//! lane-parallel dot product):
//!
//! * [`TinyModel::forward`] — one token, one sequence (a 1-token chunk).
//! * [`TinyModel::forward_chunk`] — `n` consecutive tokens of one
//!   sequence in a single pass per layer (prefill and speculative
//!   verification); each weight matrix is streamed once per chunk
//!   instead of once per token.
//! * [`TinyModel::forward_batch`] — one token each for `B` independent
//!   sequences (continuous batching); weights stream once per step
//!   across the whole batch.

use crate::kernels::{gemm, gemv, gemv_tiled, rmsnorm, rope, softmax};
use crate::quant::{Quant4Matrix, QuantMatrix};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Architecture hyperparameters (a miniature `cllm_workload::ModelConfig`).
#[derive(Debug, Clone, PartialEq)]
pub struct TinyConfig {
    /// Hidden dimension.
    pub hidden: usize,
    /// Decoder blocks.
    pub layers: usize,
    /// Query heads.
    pub heads: usize,
    /// KV heads (grouped-query attention when < heads).
    pub kv_heads: usize,
    /// Gated-MLP intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length the KV cache allocates for.
    pub max_seq: usize,
    /// RoPE base.
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub eps: f32,
}

impl TinyConfig {
    /// A small config for fast tests: 64 hidden, 2 layers, GQA 4:2.
    #[must_use]
    pub fn test_small() -> Self {
        TinyConfig {
            hidden: 64,
            layers: 2,
            heads: 4,
            kv_heads: 2,
            intermediate: 172,
            vocab: 256,
            max_seq: 128,
            rope_theta: 10000.0,
            eps: 1e-5,
        }
    }

    /// Per-head dimension.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// K/V projection width.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }
}

/// A linear layer in one of four weight formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Linear {
    /// Full-precision weights on the tiled kernel path (the default).
    F32(Matrix),
    /// Full-precision weights on the scalar reference kernel — the
    /// "naive" baseline `bench_infer` measures tiled speedups against.
    /// Serializes identically to [`Linear::F32`] (and deserializes as
    /// it); the variant only selects a kernel.
    NaiveF32(Matrix),
    /// Int8-quantized weights (group-wise scales, fused dequant).
    Int8(QuantMatrix),
    /// Packed int4-quantized weights (group-wise scales, fused dequant).
    Int4(Quant4Matrix),
}

impl Linear {
    /// `out = x · W^T`.
    pub fn apply(&self, x: &[f32], out: &mut [f32]) {
        match self {
            Linear::F32(m) => gemv_tiled(x, m, out),
            Linear::NaiveF32(m) => gemv(x, m, out),
            Linear::Int8(q) => q.gemv(x, out),
            Linear::Int4(q) => q.gemv(x, out),
        }
    }

    /// Batched `out[b] = xs[b] · W^T`, bit-identical per row to
    /// [`Linear::apply`]. The tiled and quantized formats stream each
    /// weight row once across the batch; the naive format deliberately
    /// re-runs the reference GEMV per row (no amortization), keeping the
    /// baseline honest.
    pub fn apply_batch(&self, xs: &Matrix, out: &mut Matrix) {
        match self {
            Linear::F32(m) => gemm(xs, m, out),
            Linear::NaiveF32(m) => {
                for b in 0..xs.rows {
                    gemv(xs.row(b), m, out.row_mut(b));
                }
            }
            Linear::Int8(q) => q.gemm(xs, out),
            Linear::Int4(q) => q.gemm(xs, out),
        }
    }

    /// Output dimension.
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            Linear::F32(m) | Linear::NaiveF32(m) => m.rows,
            Linear::Int8(q) => q.rows,
            Linear::Int4(q) => q.rows,
        }
    }
}

/// Weights of one decoder block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockWeights {
    /// Pre-attention RMSNorm gain.
    pub input_norm: Vec<f32>,
    /// Query projection (`hidden x hidden`).
    pub wq: Linear,
    /// Key projection (`kv_dim x hidden`).
    pub wk: Linear,
    /// Value projection (`kv_dim x hidden`).
    pub wv: Linear,
    /// Output projection (`hidden x hidden`).
    pub wo: Linear,
    /// Post-attention RMSNorm gain.
    pub post_norm: Vec<f32>,
    /// Gate projection (`intermediate x hidden`).
    pub w_gate: Linear,
    /// Up projection (`intermediate x hidden`).
    pub w_up: Linear,
    /// Down projection (`hidden x intermediate`).
    pub w_down: Linear,
}

/// The full model.
#[derive(Debug, Clone, PartialEq)]
pub struct TinyModel {
    /// Hyperparameters.
    pub config: TinyConfig,
    /// Token embedding table (`vocab x hidden`).
    pub embed: Matrix,
    /// Decoder blocks.
    pub blocks: Vec<BlockWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// LM head (`vocab x hidden`).
    pub lm_head: Linear,
}

/// Per-layer KV cache.
#[derive(Debug, Clone)]
pub struct KvCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    /// Tokens currently cached.
    pub len: usize,
    /// Width of one token's K (or V) entry.
    pub kv_dim: usize,
}

impl KvCache {
    fn new(config: &TinyConfig) -> Self {
        KvCache {
            k: vec![Vec::with_capacity(config.max_seq * config.kv_dim()); config.layers],
            v: vec![Vec::with_capacity(config.max_seq * config.kv_dim()); config.layers],
            len: 0,
            kv_dim: config.kv_dim(),
        }
    }

    /// KV bytes currently held (f32).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.k.iter().map(Vec::len).sum::<usize>() * 8
    }

    /// Drop cached entries beyond the first `len` tokens. Speculative
    /// decoding uses this to roll back a rejected draft suffix.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len` (a cache cannot be truncated forward).
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.len, "cannot truncate cache forward");
        for layer in self.k.iter_mut().chain(self.v.iter_mut()) {
            layer.truncate(len * self.kv_dim);
        }
        self.len = len;
    }

    /// Serialize the cache (for sealing/migrating a live session).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"CKVC");
        out.extend_from_slice(&(self.len as u32).to_le_bytes());
        out.extend_from_slice(&(self.kv_dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.k.len() as u32).to_le_bytes());
        for layer in self.k.iter().chain(self.v.iter()) {
            out.extend_from_slice(&(layer.len() as u32).to_le_bytes());
            for v in layer {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Restore a cache serialized by [`KvCache::to_bytes`]. Returns `None`
    /// on a malformed or internally inconsistent buffer.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let end = pos.checked_add(n)?;
            if end > bytes.len() {
                return None;
            }
            let s = &bytes[*pos..end];
            *pos = end;
            Some(s)
        };
        if take(&mut pos, 4)? != b"CKVC" {
            return None;
        }
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let kv_dim = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let layers = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let read_layer = |pos: &mut usize| -> Option<Vec<f32>> {
            let n = u32::from_le_bytes(take(pos, 4)?.try_into().ok()?) as usize;
            if n != len * kv_dim {
                return None;
            }
            let raw = take(pos, n * 4)?;
            Some(
                raw.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                    .collect(),
            )
        };
        let k: Option<Vec<Vec<f32>>> = (0..layers).map(|_| read_layer(&mut pos)).collect();
        let v: Option<Vec<Vec<f32>>> = (0..layers).map(|_| read_layer(&mut pos)).collect();
        if pos != bytes.len() {
            return None;
        }
        Some(KvCache {
            k: k?,
            v: v?,
            len,
            kv_dim,
        })
    }
}

/// Identity `AsMut`, so batched forwards accept both owned slices
/// (`&mut [KvCache]`) and gathered references (`&mut [&mut KvCache]`).
impl AsMut<KvCache> for KvCache {
    fn as_mut(&mut self) -> &mut KvCache {
        self
    }
}

fn init_matrix(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        // Uniform in [-scale, scale] — adequate for a functional model.
        data.push((rng.random::<f32>() * 2.0 - 1.0) * scale);
    }
    Matrix::from_vec(rows, cols, data)
}

impl TinyModel {
    /// Deterministically initialize a model from `seed`.
    #[must_use]
    pub fn init(config: &TinyConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = config.hidden;
        let kv = config.kv_dim();
        let inter = config.intermediate;
        #[allow(clippy::cast_precision_loss)]
        let scale = 1.0 / (h as f32).sqrt();
        let blocks = (0..config.layers)
            .map(|_| BlockWeights {
                input_norm: vec![1.0; h],
                wq: Linear::F32(init_matrix(&mut rng, h, h, scale)),
                wk: Linear::F32(init_matrix(&mut rng, kv, h, scale)),
                wv: Linear::F32(init_matrix(&mut rng, kv, h, scale)),
                wo: Linear::F32(init_matrix(&mut rng, h, h, scale)),
                post_norm: vec![1.0; h],
                w_gate: Linear::F32(init_matrix(&mut rng, inter, h, scale)),
                w_up: Linear::F32(init_matrix(&mut rng, inter, h, scale)),
                w_down: Linear::F32(init_matrix(&mut rng, h, inter, scale)),
            })
            .collect();
        TinyModel {
            config: config.clone(),
            embed: init_matrix(&mut rng, config.vocab, h, 0.1),
            blocks,
            final_norm: vec![1.0; h],
            lm_head: Linear::F32(init_matrix(&mut rng, config.vocab, h, scale)),
        }
    }

    /// Copy of the model with every linear layer mapped through `f`
    /// (embedding and norms are shared structure and copied as-is).
    fn map_linears(&self, f: impl Fn(&Linear) -> Linear) -> TinyModel {
        TinyModel {
            config: self.config.clone(),
            embed: self.embed.clone(),
            blocks: self
                .blocks
                .iter()
                .map(|b| BlockWeights {
                    input_norm: b.input_norm.clone(),
                    wq: f(&b.wq),
                    wk: f(&b.wk),
                    wv: f(&b.wv),
                    wo: f(&b.wo),
                    post_norm: b.post_norm.clone(),
                    w_gate: f(&b.w_gate),
                    w_up: f(&b.w_up),
                    w_down: f(&b.w_down),
                })
                .collect(),
            final_norm: self.final_norm.clone(),
            lm_head: f(&self.lm_head),
        }
    }

    /// Quantize all linear layers to int8 (embedding and norms stay f32,
    /// as in the paper's deployments). Already-quantized layers are kept.
    #[must_use]
    pub fn quantized(&self) -> TinyModel {
        self.map_linears(|l| match l {
            Linear::F32(m) | Linear::NaiveF32(m) => Linear::Int8(QuantMatrix::quantize(m)),
            other => other.clone(),
        })
    }

    /// Quantize all linear layers to packed int4 (group-wise scales).
    /// Already-quantized layers are kept.
    #[must_use]
    pub fn quantized4(&self) -> TinyModel {
        self.map_linears(|l| match l {
            Linear::F32(m) | Linear::NaiveF32(m) => Linear::Int4(Quant4Matrix::quantize(m)),
            other => other.clone(),
        })
    }

    /// Copy of the model with full-precision layers pinned to the scalar
    /// reference kernel — the naive baseline for `bench_infer`.
    #[must_use]
    pub fn naive(&self) -> TinyModel {
        self.map_linears(|l| match l {
            Linear::F32(m) | Linear::NaiveF32(m) => Linear::NaiveF32(m.clone()),
            other => other.clone(),
        })
    }

    /// Fresh KV cache.
    #[must_use]
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(&self.config)
    }

    /// Process one token at position `cache.len`, append to the cache and
    /// return the next-token logits. This is a 1-token
    /// [`TinyModel::forward_chunk`], so single-token decode is
    /// bit-identical to chunked and batched decode.
    ///
    /// # Panics
    ///
    /// Panics if `token >= vocab` or the cache is full.
    #[must_use]
    pub fn forward(&self, token: usize, cache: &mut KvCache) -> Vec<f32> {
        self.forward_chunk(&[token], cache).row(0).to_vec()
    }

    /// Attention for one query position against a cache prefix: scores
    /// against all cached keys of each head's kv group, softmax, weighted
    /// V sum. `seq` is the number of cached positions visible to this
    /// query (its own K/V entry must already be appended).
    fn attend(&self, layer: usize, q: &[f32], seq: usize, cache: &KvCache, out: &mut [f32]) {
        let cfg = &self.config;
        let hd = cfg.head_dim();
        let kvd = cfg.kv_dim();
        let group = cfg.heads / cfg.kv_heads;
        #[allow(clippy::cast_precision_loss)]
        let inv_sqrt_d = 1.0 / (hd as f32).sqrt();
        for head in 0..cfg.heads {
            let kv_head = head / group;
            let qh = &q[head * hd..(head + 1) * hd];
            // Scores against all cached keys of this kv head.
            let mut scores = Vec::with_capacity(seq);
            for t in 0..seq {
                let kh = &cache.k[layer][t * kvd + kv_head * hd..t * kvd + (kv_head + 1) * hd];
                // Same lane-parallel dot as the matmul kernels: a head
                // dim of 64 is exactly one lane block, and the serial
                // iterator sum was a visible slice of decode time.
                let dot = crate::kernels::dot_lanes(qh, kh);
                scores.push(dot * inv_sqrt_d);
            }
            softmax(&mut scores);
            let oh = &mut out[head * hd..(head + 1) * hd];
            for (t, w) in scores.iter().enumerate() {
                let vh = &cache.v[layer][t * kvd + kv_head * hd..t * kvd + (kv_head + 1) * hd];
                for (o, val) in oh.iter_mut().zip(vh) {
                    *o += w * val;
                }
            }
        }
    }

    /// Process `n` consecutive tokens of one sequence in a single pass
    /// per layer, appending all of them to the cache; returns the `n x
    /// vocab` logits (row `i` = next-token logits after `tokens[..=i]`).
    ///
    /// Each weight matrix is streamed from memory once per chunk via the
    /// batched kernels, which is what makes prefill and speculative
    /// verification fast; causality is preserved by appending K/V
    /// position-by-position before attending.
    ///
    /// # Panics
    ///
    /// Panics if any token is out of vocabulary or the chunk overflows
    /// the cache.
    #[must_use]
    pub fn forward_chunk(&self, tokens: &[usize], cache: &mut KvCache) -> Matrix {
        let cfg = &self.config;
        let n = tokens.len();
        for &t in tokens {
            assert!(t < cfg.vocab, "token {t} out of vocabulary");
        }
        assert!(cache.len + n <= cfg.max_seq, "KV cache full");
        let base = cache.len;
        let h = cfg.hidden;
        let hd = cfg.head_dim();
        let kvd = cfg.kv_dim();
        let inter = cfg.intermediate;

        let mut x = Matrix::zeros(n, h);
        for (i, &t) in tokens.iter().enumerate() {
            x.row_mut(i).copy_from_slice(self.embed.row(t));
        }

        for (layer, block) in self.blocks.iter().enumerate() {
            // Attention sub-block.
            let mut normed = x.clone();
            for i in 0..n {
                rmsnorm(normed.row_mut(i), &block.input_norm, cfg.eps);
            }
            let mut q = Matrix::zeros(n, h);
            let mut k = Matrix::zeros(n, kvd);
            let mut v = Matrix::zeros(n, kvd);
            block.wq.apply_batch(&normed, &mut q);
            block.wk.apply_batch(&normed, &mut k);
            block.wv.apply_batch(&normed, &mut v);

            for i in 0..n {
                let pos = base + i;
                let qr = q.row_mut(i);
                for head in 0..cfg.heads {
                    rope(&mut qr[head * hd..(head + 1) * hd], pos, cfg.rope_theta);
                }
                let kr = k.row_mut(i);
                for head in 0..cfg.kv_heads {
                    rope(&mut kr[head * hd..(head + 1) * hd], pos, cfg.rope_theta);
                }
            }

            let mut attn = Matrix::zeros(n, h);
            for i in 0..n {
                cache.k[layer].extend_from_slice(k.row(i));
                cache.v[layer].extend_from_slice(v.row(i));
                self.attend(layer, q.row(i), base + i + 1, cache, attn.row_mut(i));
            }

            let mut proj = Matrix::zeros(n, h);
            block.wo.apply_batch(&attn, &mut proj);
            for i in 0..n {
                for (xi, p) in x.row_mut(i).iter_mut().zip(proj.row(i)) {
                    *xi += p;
                }
            }

            // MLP sub-block.
            let mut normed = x.clone();
            for i in 0..n {
                rmsnorm(normed.row_mut(i), &block.post_norm, cfg.eps);
            }
            let mut gate = Matrix::zeros(n, inter);
            let mut up = Matrix::zeros(n, inter);
            block.w_gate.apply_batch(&normed, &mut gate);
            block.w_up.apply_batch(&normed, &mut up);
            for i in 0..n {
                for (g, u) in gate.row_mut(i).iter_mut().zip(up.row(i)) {
                    *g = crate::kernels::silu(*g) * u;
                }
            }
            let mut down = Matrix::zeros(n, h);
            block.w_down.apply_batch(&gate, &mut down);
            for i in 0..n {
                for (xi, d) in x.row_mut(i).iter_mut().zip(down.row(i)) {
                    *xi += d;
                }
            }
        }

        cache.len += n;

        for i in 0..n {
            rmsnorm(x.row_mut(i), &self.final_norm, cfg.eps);
        }
        let mut logits = Matrix::zeros(n, cfg.vocab);
        self.lm_head.apply_batch(&x, &mut logits);
        logits
    }

    /// Advance `B` independent sequences by one token each in a single
    /// pass per layer; `tokens[b]` goes to `caches[b]` at its own
    /// position (sequences may be at different lengths). Returns the
    /// `B x vocab` logits. Weight traffic is amortized across the batch
    /// exactly as the analytical model assumes for batched decode.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch, out-of-vocabulary tokens, or any full
    /// cache.
    #[must_use]
    pub fn forward_batch<C: AsMut<KvCache>>(&self, tokens: &[usize], caches: &mut [C]) -> Matrix {
        let cfg = &self.config;
        let n = tokens.len();
        assert_eq!(n, caches.len(), "one cache per sequence");
        let mut caches: Vec<&mut KvCache> = caches.iter_mut().map(AsMut::as_mut).collect();
        for (&t, c) in tokens.iter().zip(caches.iter()) {
            assert!(t < cfg.vocab, "token {t} out of vocabulary");
            assert!(c.len < cfg.max_seq, "KV cache full");
        }
        let h = cfg.hidden;
        let hd = cfg.head_dim();
        let inter = cfg.intermediate;

        let mut x = Matrix::zeros(n, h);
        for (i, &t) in tokens.iter().enumerate() {
            x.row_mut(i).copy_from_slice(self.embed.row(t));
        }

        for (layer, block) in self.blocks.iter().enumerate() {
            let mut normed = x.clone();
            for i in 0..n {
                rmsnorm(normed.row_mut(i), &block.input_norm, cfg.eps);
            }
            let mut q = Matrix::zeros(n, h);
            let mut k = Matrix::zeros(n, cfg.kv_dim());
            let mut v = Matrix::zeros(n, cfg.kv_dim());
            block.wq.apply_batch(&normed, &mut q);
            block.wk.apply_batch(&normed, &mut k);
            block.wv.apply_batch(&normed, &mut v);

            for (i, cache) in caches.iter().enumerate() {
                let pos = cache.len;
                let qr = q.row_mut(i);
                for head in 0..cfg.heads {
                    rope(&mut qr[head * hd..(head + 1) * hd], pos, cfg.rope_theta);
                }
                let kr = k.row_mut(i);
                for head in 0..cfg.kv_heads {
                    rope(&mut kr[head * hd..(head + 1) * hd], pos, cfg.rope_theta);
                }
            }

            let mut attn = Matrix::zeros(n, h);
            for (i, cache) in caches.iter_mut().enumerate() {
                cache.k[layer].extend_from_slice(k.row(i));
                cache.v[layer].extend_from_slice(v.row(i));
                self.attend(layer, q.row(i), cache.len + 1, cache, attn.row_mut(i));
            }

            let mut proj = Matrix::zeros(n, h);
            block.wo.apply_batch(&attn, &mut proj);
            for i in 0..n {
                for (xi, p) in x.row_mut(i).iter_mut().zip(proj.row(i)) {
                    *xi += p;
                }
            }

            let mut normed = x.clone();
            for i in 0..n {
                rmsnorm(normed.row_mut(i), &block.post_norm, cfg.eps);
            }
            let mut gate = Matrix::zeros(n, inter);
            let mut up = Matrix::zeros(n, inter);
            block.w_gate.apply_batch(&normed, &mut gate);
            block.w_up.apply_batch(&normed, &mut up);
            for i in 0..n {
                for (g, u) in gate.row_mut(i).iter_mut().zip(up.row(i)) {
                    *g = crate::kernels::silu(*g) * u;
                }
            }
            let mut down = Matrix::zeros(n, h);
            block.w_down.apply_batch(&gate, &mut down);
            for i in 0..n {
                for (xi, d) in x.row_mut(i).iter_mut().zip(down.row(i)) {
                    *xi += d;
                }
            }
        }

        for c in caches.iter_mut() {
            c.len += 1;
        }

        for i in 0..n {
            rmsnorm(x.row_mut(i), &self.final_norm, cfg.eps);
        }
        let mut logits = Matrix::zeros(n, cfg.vocab);
        self.lm_head.apply_batch(&x, &mut logits);
        logits
    }

    /// Approximate parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        let c = &self.config;
        let block = c.hidden * c.hidden * 2
            + c.hidden * c.kv_dim() * 2
            + 3 * c.hidden * c.intermediate
            + 2 * c.hidden;
        2 * c.vocab * c.hidden + c.layers * block + c.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TinyModel {
        TinyModel::init(&TinyConfig::test_small(), 1234)
    }

    #[test]
    fn deterministic_init() {
        let a = model();
        let b = model();
        assert_eq!(a.embed, b.embed);
        assert_eq!(a.blocks.len(), 2);
    }

    #[test]
    fn forward_produces_finite_logits() {
        let m = model();
        let mut cache = m.new_cache();
        let logits = m.forward(7, &mut cache);
        assert_eq!(logits.len(), 256);
        assert!(logits.iter().all(|v| v.is_finite()));
        assert_eq!(cache.len, 1);
    }

    #[test]
    fn context_changes_predictions() {
        // The same token after different histories must yield different
        // logits — i.e. attention actually attends.
        let m = model();
        let mut c1 = m.new_cache();
        let _ = m.forward(5, &mut c1);
        let l1 = m.forward(9, &mut c1);
        let mut c2 = m.new_cache();
        let _ = m.forward(6, &mut c2);
        let l2 = m.forward(9, &mut c2);
        let diff: f32 = l1.iter().zip(&l2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "history had no effect: diff {diff}");
    }

    #[test]
    fn cache_prefix_consistency() {
        // Feeding [a, b, c] one at a time must match feeding [a, b] then c
        // in a fresh cache (incremental KV caching is exact).
        let m = model();
        let mut full = m.new_cache();
        let _ = m.forward(1, &mut full);
        let _ = m.forward(2, &mut full);
        let l_full = m.forward(3, &mut full);

        let mut replay = m.new_cache();
        let _ = m.forward(1, &mut replay);
        let _ = m.forward(2, &mut replay);
        let l_replay = m.forward(3, &mut replay);
        assert_eq!(l_full, l_replay);
    }

    #[test]
    fn quantized_model_tracks_f32() {
        let m = model();
        let q = m.quantized();
        let mut cf = m.new_cache();
        let mut cq = q.new_cache();
        let lf = m.forward(42, &mut cf);
        let lq = q.forward(42, &mut cq);
        // Correlation between f32 and int8 logits should be strong.
        let dot: f32 = lf.iter().zip(&lq).map(|(a, b)| a * b).sum();
        let nf: f32 = lf.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nq: f32 = lq.iter().map(|v| v * v).sum::<f32>().sqrt();
        let corr = dot / (nf * nq);
        assert!(corr > 0.98, "correlation {corr}");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_out_of_vocab() {
        let m = model();
        let mut cache = m.new_cache();
        let _ = m.forward(9999, &mut cache);
    }

    #[test]
    fn gqa_grouping_works() {
        // test_small uses 4 heads over 2 kv heads; forward must not panic
        // and kv cache width must be kv_dim.
        let m = model();
        let mut cache = m.new_cache();
        let _ = m.forward(0, &mut cache);
        assert_eq!(cache.k[0].len(), m.config.kv_dim());
    }

    #[test]
    fn kv_cache_migration_is_exact() {
        // Seal-and-migrate: a restored cache continues generation exactly
        // where the original left off.
        let m = model();
        let mut original = m.new_cache();
        for t in [5usize, 9, 3, 14] {
            let _ = m.forward(t, &mut original);
        }
        let restored = KvCache::from_bytes(&original.to_bytes()).unwrap();
        let mut a = original.clone();
        let mut b = restored;
        assert_eq!(m.forward(21, &mut a), m.forward(21, &mut b));
    }

    #[test]
    fn kv_cache_rejects_garbage() {
        assert!(KvCache::from_bytes(b"junk").is_none());
        let m = model();
        let mut c = m.new_cache();
        let _ = m.forward(1, &mut c);
        let mut bytes = c.to_bytes();
        bytes.pop();
        assert!(KvCache::from_bytes(&bytes).is_none());
        bytes.push(0);
        bytes.push(0);
        assert!(KvCache::from_bytes(&bytes).is_none());
    }

    #[test]
    fn param_count_plausible() {
        let m = model();
        let p = m.param_count();
        assert!(p > 50_000 && p < 500_000, "params {p}");
    }

    #[test]
    fn chunked_forward_bit_identical_to_sequential() {
        let m = model();
        let tokens = [3usize, 17, 99, 4, 200];
        let mut seq_cache = m.new_cache();
        let seq_logits: Vec<Vec<f32>> = tokens
            .iter()
            .map(|&t| m.forward(t, &mut seq_cache))
            .collect();
        let mut chunk_cache = m.new_cache();
        let chunk_logits = m.forward_chunk(&tokens, &mut chunk_cache);
        assert_eq!(chunk_cache.len, tokens.len());
        for (i, sl) in seq_logits.iter().enumerate() {
            assert_eq!(chunk_logits.row(i), &sl[..], "position {i} diverged");
        }
        // And the caches are byte-identical, so generation can continue
        // from either.
        assert_eq!(seq_cache.to_bytes(), chunk_cache.to_bytes());
    }

    #[test]
    fn chunked_forward_matches_for_quantized_models() {
        for m in [model().quantized(), model().quantized4(), model().naive()] {
            let tokens = [8usize, 1, 77];
            let mut seq_cache = m.new_cache();
            let all: Vec<Vec<f32>> = tokens
                .iter()
                .map(|&t| m.forward(t, &mut seq_cache))
                .collect();
            let seq_last = all.last().unwrap().clone();
            let mut chunk_cache = m.new_cache();
            let chunk = m.forward_chunk(&tokens, &mut chunk_cache);
            assert_eq!(chunk.row(tokens.len() - 1), &seq_last[..]);
        }
    }

    #[test]
    fn batched_forward_bit_identical_to_individual() {
        let m = model();
        // Three sequences at different lengths.
        let prompts: [&[usize]; 3] = [&[1, 2], &[9], &[40, 41, 42]];
        let mut caches: Vec<KvCache> = prompts
            .iter()
            .map(|p| {
                let mut c = m.new_cache();
                let _ = m.forward_chunk(p, &mut c);
                c
            })
            .collect();
        let mut individual = caches.clone();
        let step = [7usize, 8, 9];
        let batched = m.forward_batch(&step, &mut caches);
        for (b, &t) in step.iter().enumerate() {
            let single = m.forward(t, &mut individual[b]);
            assert_eq!(batched.row(b), &single[..], "sequence {b} diverged");
            assert_eq!(caches[b].len, individual[b].len);
        }
    }

    #[test]
    fn truncate_rolls_back_exactly() {
        let m = model();
        let mut reference = m.new_cache();
        let _ = m.forward_chunk(&[5, 6], &mut reference);
        let mut speculated = reference.clone();
        let _ = m.forward_chunk(&[100, 101, 102], &mut speculated);
        speculated.truncate(2);
        assert_eq!(speculated.to_bytes(), reference.to_bytes());
        // Continuing after rollback matches continuing the reference.
        assert_eq!(
            m.forward(33, &mut speculated),
            m.forward(33, &mut reference)
        );
    }

    #[test]
    #[should_panic(expected = "truncate cache forward")]
    fn truncate_forward_rejected() {
        let m = model();
        let mut c = m.new_cache();
        let _ = m.forward(1, &mut c);
        c.truncate(2);
    }

    #[test]
    fn int4_model_tracks_f32() {
        let m = model();
        let q = m.quantized4();
        let mut cf = m.new_cache();
        let mut cq = q.new_cache();
        let lf = m.forward(42, &mut cf);
        let lq = q.forward(42, &mut cq);
        let dot: f32 = lf.iter().zip(&lq).map(|(a, b)| a * b).sum();
        let nf: f32 = lf.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nq: f32 = lq.iter().map(|v| v * v).sum::<f32>().sqrt();
        let corr = dot / (nf * nq);
        assert!(corr > 0.90, "int4 correlation {corr}");
    }
}
