//! Minimal row-major f32 tensor.

/// A dense, row-major, 2-D f32 matrix (the only shape the engine needs:
/// vectors are `1 x n`).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Immutable row view.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data view.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Serialize to little-endian bytes (for sealing/encrypting weights).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.data.len() * 4);
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.extend_from_slice(&(self.cols as u32).to_le_bytes());
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`Matrix::to_bytes`] output. Returns `None` on a
    /// malformed buffer.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let rows = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let cols = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let body = &bytes[8..];
        if body.len() != rows * cols * 4 {
            return None;
        }
        let data = body
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        Some(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_elements() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn bytes_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, -2.5, 3.25, 0.0]);
        let back = Matrix::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Matrix::from_bytes(&[1, 2, 3]).is_none());
        let mut b = Matrix::zeros(2, 2).to_bytes();
        b.pop();
        assert!(Matrix::from_bytes(&b).is_none());
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
