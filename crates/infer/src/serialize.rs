//! Model weight serialization — the byte format that gets sealed /
//! encrypted at rest in the confidential pipeline.
//!
//! Format (little-endian): magic `CLLM`, version u16, seven u32 config
//! fields, then per block and head each weight matrix as produced by
//! [`Matrix::to_bytes`], length-prefixed with u64. Only f32 models are
//! serialized; quantization is re-applied after loading (as the paper's
//! deployments do: the artifact at rest is the full-precision model).

use crate::model::{BlockWeights, Linear, TinyConfig, TinyModel};
use crate::tensor::Matrix;

const MAGIC: &[u8; 4] = b"CLLM";
const VERSION: u16 = 1;

/// Serialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// The model contains quantized layers; serialize the f32 original.
    QuantizedModel,
    /// The byte stream is not a valid model.
    Malformed(&'static str),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::QuantizedModel => {
                f.write_str("quantized models are not serializable; store the f32 original")
            }
            SerializeError::Malformed(what) => write!(f, "malformed model bytes: {what}"),
        }
    }
}

impl std::error::Error for SerializeError {}

fn linear_matrix(l: &Linear) -> Result<&Matrix, SerializeError> {
    match l {
        // NaiveF32 is a kernel choice, not a weight format: it serializes
        // as full precision and deserializes as the (tiled) F32 variant.
        Linear::F32(m) | Linear::NaiveF32(m) => Ok(m),
        Linear::Int8(_) | Linear::Int4(_) => Err(SerializeError::QuantizedModel),
    }
}

fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    let bytes = m.to_bytes();
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&bytes);
}

fn push_vec(out: &mut Vec<u8>, v: &[f32]) {
    push_matrix(out, &Matrix::from_vec(1, v.len(), v.to_vec()));
}

/// Serialize an f32 model to bytes.
pub fn model_to_bytes(model: &TinyModel) -> Result<Vec<u8>, SerializeError> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let c = &model.config;
    for field in [
        c.hidden,
        c.layers,
        c.heads,
        c.kv_heads,
        c.intermediate,
        c.vocab,
        c.max_seq,
    ] {
        out.extend_from_slice(&(field as u32).to_le_bytes());
    }
    out.extend_from_slice(&c.rope_theta.to_le_bytes());
    out.extend_from_slice(&c.eps.to_le_bytes());

    push_matrix(&mut out, &model.embed);
    for b in &model.blocks {
        push_vec(&mut out, &b.input_norm);
        for l in [&b.wq, &b.wk, &b.wv, &b.wo, &b.w_gate, &b.w_up, &b.w_down] {
            push_matrix(&mut out, linear_matrix(l)?);
        }
        push_vec(&mut out, &b.post_norm);
    }
    push_vec(&mut out, &model.final_norm);
    push_matrix(&mut out, linear_matrix(&model.lm_head)?);
    Ok(out)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerializeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SerializeError::Malformed("truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SerializeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn f32(&mut self) -> Result<f32, SerializeError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn matrix(&mut self) -> Result<Matrix, SerializeError> {
        let len = u64::from_le_bytes(self.take(8)?.try_into().expect("8")) as usize;
        Matrix::from_bytes(self.take(len)?).ok_or(SerializeError::Malformed("bad matrix"))
    }

    fn vec(&mut self) -> Result<Vec<f32>, SerializeError> {
        Ok(self.matrix()?.as_slice().to_vec())
    }
}

/// Deserialize a model from [`model_to_bytes`] output.
pub fn model_from_bytes(bytes: &[u8]) -> Result<TinyModel, SerializeError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SerializeError::Malformed("bad magic"));
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2"));
    if version != VERSION {
        return Err(SerializeError::Malformed("unsupported version"));
    }
    let config = TinyConfig {
        hidden: r.u32()? as usize,
        layers: r.u32()? as usize,
        heads: r.u32()? as usize,
        kv_heads: r.u32()? as usize,
        intermediate: r.u32()? as usize,
        vocab: r.u32()? as usize,
        max_seq: r.u32()? as usize,
        rope_theta: r.f32()?,
        eps: r.f32()?,
    };
    if config.heads == 0 || config.kv_heads == 0 || !config.hidden.is_multiple_of(config.heads) {
        return Err(SerializeError::Malformed("inconsistent config"));
    }
    let embed = r.matrix()?;
    let mut blocks = Vec::with_capacity(config.layers);
    for _ in 0..config.layers {
        let input_norm = r.vec()?;
        let wq = Linear::F32(r.matrix()?);
        let wk = Linear::F32(r.matrix()?);
        let wv = Linear::F32(r.matrix()?);
        let wo = Linear::F32(r.matrix()?);
        let w_gate = Linear::F32(r.matrix()?);
        let w_up = Linear::F32(r.matrix()?);
        let w_down = Linear::F32(r.matrix()?);
        let post_norm = r.vec()?;
        blocks.push(BlockWeights {
            input_norm,
            wq,
            wk,
            wv,
            wo,
            post_norm,
            w_gate,
            w_up,
            w_down,
        });
    }
    let final_norm = r.vec()?;
    let lm_head = Linear::F32(r.matrix()?);
    Ok(TinyModel {
        config,
        embed,
        blocks,
        final_norm,
        lm_head,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = TinyModel::init(&TinyConfig::test_small(), 7);
        let bytes = model_to_bytes(&m).unwrap();
        let back = model_from_bytes(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn roundtrip_model_generates_identically() {
        use crate::generate::{generate, Sampling};
        let m = TinyModel::init(&TinyConfig::test_small(), 7);
        let back = model_from_bytes(&model_to_bytes(&m).unwrap()).unwrap();
        assert_eq!(
            generate(&m, &[1, 2], 6, Sampling::Greedy, 0),
            generate(&back, &[1, 2], 6, Sampling::Greedy, 0)
        );
    }

    #[test]
    fn quantized_model_rejected() {
        let m = TinyModel::init(&TinyConfig::test_small(), 7).quantized();
        assert_eq!(model_to_bytes(&m), Err(SerializeError::QuantizedModel));
        let m4 = TinyModel::init(&TinyConfig::test_small(), 7).quantized4();
        assert_eq!(model_to_bytes(&m4), Err(SerializeError::QuantizedModel));
    }

    #[test]
    fn naive_model_serializes_as_f32() {
        let m = TinyModel::init(&TinyConfig::test_small(), 7);
        let bytes_naive = model_to_bytes(&m.naive()).unwrap();
        assert_eq!(bytes_naive, model_to_bytes(&m).unwrap());
        // Deserializes back onto the tiled path.
        assert_eq!(model_from_bytes(&bytes_naive).unwrap(), m);
    }

    #[test]
    fn malformed_rejected() {
        assert!(model_from_bytes(b"nope").is_err());
        let m = TinyModel::init(&TinyConfig::test_small(), 7);
        let mut bytes = model_to_bytes(&m).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(model_from_bytes(&bytes).is_err());
        bytes[0] = b'X';
        assert!(model_from_bytes(&bytes).is_err());
    }
}
