//! Seeded deterministic speculative decoding (draft-k / verify /
//! accept-prefix), token-identical to vanilla decode by construction.
//!
//! A small draft model proposes `k` tokens greedily; the target model
//! verifies the whole proposal in **one chunked forward**
//! ([`crate::model::TinyModel::forward_chunk`]), streaming its weights
//! once per round instead of once per token — the weight-traffic
//! amortization that makes speculative decoding pay on memory-bound
//! decode. Rejected suffixes are rolled back with
//! [`crate::model::KvCache::truncate`].
//!
//! **Draw-aligned determinism.** Vanilla [`crate::generate::generate`]
//! consumes exactly one RNG draw per emitted token (temperature) or none
//! (greedy). This implementation preserves that discipline exactly: the
//! `j`-th emitted token is always produced by
//! `generate::next_token(logits after the j-token prefix, draw j)`,
//! whether the token came from an accepted draft (the target's choice
//! happened to equal the proposal) or a rejection (the target's choice
//! is emitted directly, no extra draw). By induction the output is
//! **token-identical to vanilla decode for any draft model and any k**
//! — the draft only decides how many target forwards were batched
//! together, never what gets emitted. The equivalence suite
//! (`tests/spec_equivalence.rs`) pins this for greedy and temperature
//! sampling across draft models of varying quality.

use crate::generate::{next_token, Sampling};
use crate::model::TinyModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counters from one speculative run; the raw material for the
/// `token-conservation` and `forbid-nonfinite-logits` invariants in
/// `cllm_serve::invariants` (see `InferLoopReport`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Draft-k/verify rounds executed.
    pub rounds: usize,
    /// Tokens the draft model proposed.
    pub drafted: usize,
    /// Proposals the target accepted (emitted verbatim).
    pub accepted: usize,
    /// Positions where the target disagreed and its own sample was
    /// emitted instead.
    pub resampled: usize,
    /// Non-finite values observed across all logit vectors used for
    /// emission decisions (must be 0 on a healthy model).
    pub nonfinite_logits: usize,
}

impl SpecStats {
    /// Tokens emitted: every emission is either an accepted draft or a
    /// target resample, so `accepted + resampled` must equal the output
    /// length — the token-conservation invariant.
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.accepted + self.resampled
    }

    /// Fraction of drafted tokens accepted (0 if nothing was drafted).
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.accepted as f64 / self.drafted as f64
            }
        }
    }
}

/// Count non-finite entries of a logits vector into `stats`.
fn scan_logits(logits: &[f32], stats: &mut SpecStats) {
    stats.nonfinite_logits += logits.iter().filter(|v| !v.is_finite()).count();
}

/// Generate `max_new` tokens with speculative decoding: `draft` proposes
/// up to `k` tokens per round (greedy), `target` verifies them in one
/// chunked forward, and the accepted prefix is kept. Returns the emitted
/// tokens and the round/acceptance counters.
///
/// Output is token-identical to
/// `generate(target, prompt, max_new, sampling, seed)` for any draft
/// and any `k >= 1`.
///
/// # Panics
///
/// Panics if `k == 0`, the draft and target vocabularies differ, or
/// `prompt.len() + max_new + k` overflows either model's `max_seq`
/// (verification briefly holds up to `k` unaccepted positions in the
/// cache).
#[must_use]
pub fn speculative_generate(
    target: &TinyModel,
    draft: &TinyModel,
    prompt: &[usize],
    max_new: usize,
    k: usize,
    sampling: Sampling,
    seed: u64,
) -> (Vec<usize>, SpecStats) {
    assert!(k >= 1, "draft window k must be at least 1");
    assert_eq!(
        target.config.vocab, draft.config.vocab,
        "draft and target must share a vocabulary"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = SpecStats::default();
    let mut tcache = target.new_cache();
    let mut dcache = draft.new_cache();

    // Prefill both models on the prompt in one chunked pass each. With an
    // empty prompt, vanilla decode samples its first token from all-zero
    // logits; mirror that exactly.
    let zero_logits = vec![0.0f32; target.config.vocab];
    let mut logits_t: Option<Vec<f32>> = if prompt.is_empty() {
        Some(zero_logits.clone())
    } else {
        let rows = target.forward_chunk(prompt, &mut tcache);
        Some(rows.row(prompt.len() - 1).to_vec())
    };
    let mut logits_d: Vec<f32> = if prompt.is_empty() {
        vec![0.0f32; draft.config.vocab]
    } else {
        let rows = draft.forward_chunk(prompt, &mut dcache);
        rows.row(prompt.len() - 1).to_vec()
    };

    let mut out = Vec::with_capacity(max_new);
    // A token emitted by rejection that neither model has consumed yet;
    // it rides at the front of the next verification chunk (target) and
    // is fed to the draft at the top of the next round, so rejection
    // costs no extra full forward.
    let mut pending: Option<usize> = None;

    while out.len() < max_new {
        // Catch the draft up on last round's resampled token.
        if let Some(t) = pending {
            logits_d = draft.forward(t, &mut dcache);
        }

        // Draft proposes greedily. Verifying more than `remaining`
        // positions could never emit anything, so clamp.
        let kr = k.min(max_new - out.len());
        let mut drafts = Vec::with_capacity(kr);
        for _ in 0..kr {
            let d = crate::kernels::argmax(&logits_d);
            drafts.push(d);
            logits_d = draft.forward(d, &mut dcache);
        }
        stats.drafted += kr;

        // Target verifies the pending token (if any) plus the whole
        // proposal in a single chunked forward.
        let tbase = tcache.len;
        let chunk: Vec<usize> = pending
            .iter()
            .copied()
            .chain(drafts.iter().copied())
            .collect();
        let rows = target.forward_chunk(&chunk, &mut tcache);
        let off = usize::from(pending.is_some());
        let mut cur: Vec<f32> = if pending.is_some() {
            rows.row(0).to_vec()
        } else {
            logits_t
                .take()
                .expect("logits available when nothing pending")
        };
        pending = None;

        let emitted_before = out.len();
        let mut accepted_this = 0usize;
        let mut rejected = false;
        for (i, &d) in drafts.iter().enumerate() {
            scan_logits(&cur, &mut stats);
            let t = next_token(&cur, sampling, &mut rng);
            if t == d {
                out.push(t);
                stats.accepted += 1;
                accepted_this += 1;
                cur = rows.row(off + i).to_vec();
            } else {
                out.push(t);
                stats.resampled += 1;
                // Roll both caches back to the emitted prefix. The target
                // keeps the accepted drafts (and last round's pending
                // token); the draft keeps only its accepted proposals.
                tcache.truncate(tbase + off + accepted_this);
                dcache.truncate(prompt.len() + out.len() - 1);
                pending = Some(t);
                rejected = true;
                break;
            }
        }
        if !rejected {
            logits_t = Some(cur);
        }
        stats.rounds += 1;
        debug_assert_eq!(
            out.len() - emitted_before,
            accepted_this + usize::from(rejected)
        );
    }

    debug_assert_eq!(stats.emitted(), out.len());
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::model::TinyConfig;

    fn target() -> TinyModel {
        TinyModel::init(&TinyConfig::test_small(), 99)
    }

    #[test]
    fn greedy_matches_vanilla_with_quantized_draft() {
        let m = target();
        let draft = m.quantized();
        let vanilla = generate(&m, &[1, 2, 3], 12, Sampling::Greedy, 0);
        let (spec, stats) =
            speculative_generate(&m, &draft, &[1, 2, 3], 12, 4, Sampling::Greedy, 0);
        assert_eq!(spec, vanilla);
        assert_eq!(stats.emitted(), 12);
        assert!(stats.accepted > 0, "int8 draft should agree sometimes");
        assert_eq!(stats.nonfinite_logits, 0);
    }

    #[test]
    fn hostile_draft_still_matches_vanilla() {
        // A draft trained on nothing (different seed) proposes garbage;
        // output must still be exactly vanilla.
        let m = target();
        let hostile = TinyModel::init(&TinyConfig::test_small(), 12345);
        let vanilla = generate(&m, &[7], 10, Sampling::Greedy, 0);
        let (spec, stats) = speculative_generate(&m, &hostile, &[7], 10, 3, Sampling::Greedy, 0);
        assert_eq!(spec, vanilla);
        assert_eq!(stats.emitted(), 10);
    }

    #[test]
    fn temperature_matches_vanilla_draw_for_draw() {
        let m = target();
        let draft = m.quantized();
        for seed in [0u64, 1, 7] {
            let vanilla = generate(&m, &[4, 5], 14, Sampling::Temperature(1.2), seed);
            let (spec, _) =
                speculative_generate(&m, &draft, &[4, 5], 14, 3, Sampling::Temperature(1.2), seed);
            assert_eq!(spec, vanilla, "seed {seed} diverged");
        }
    }

    #[test]
    fn empty_prompt_matches_vanilla() {
        let m = target();
        let draft = m.quantized();
        let vanilla = generate(&m, &[], 6, Sampling::Greedy, 0);
        let (spec, _) = speculative_generate(&m, &draft, &[], 6, 2, Sampling::Greedy, 0);
        assert_eq!(spec, vanilla);
    }

    #[test]
    fn conservation_holds_across_k() {
        let m = target();
        let draft = m.quantized();
        for k in 1..=5 {
            let (out, stats) =
                speculative_generate(&m, &draft, &[9, 8], 11, k, Sampling::Greedy, 0);
            assert_eq!(out.len(), 11);
            assert_eq!(stats.emitted(), out.len(), "k={k}");
            assert!(stats.accepted <= stats.drafted, "k={k}");
            assert!(stats.rounds >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let m = target();
        let d = m.quantized();
        let _ = speculative_generate(&m, &d, &[1], 4, 0, Sampling::Greedy, 0);
    }
}
