//! Compute kernels: matmul, RMSNorm, softmax, SiLU, RoPE.

use crate::tensor::Matrix;

/// `out = x · w^T` for a single input row `x` (`1 x in`), with `w` stored
/// as `out_dim x in_dim` (each row of `w` is one output neuron) — the
/// GEMV at the heart of decode.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn gemv(x: &[f32], w: &Matrix, out: &mut [f32]) {
    assert_eq!(x.len(), w.cols, "gemv input dim");
    assert_eq!(out.len(), w.rows, "gemv output dim");
    for (row, o) in out.iter_mut().enumerate() {
        let wr = w.row(row);
        let mut acc = 0.0f32;
        // Unrolled-by-4 dot product: the scalar stand-in for AMX tiles.
        let chunks = x.len() / 4 * 4;
        let mut i = 0;
        while i < chunks {
            acc +=
                x[i] * wr[i] + x[i + 1] * wr[i + 1] + x[i + 2] * wr[i + 2] + x[i + 3] * wr[i + 3];
            i += 4;
        }
        for j in chunks..x.len() {
            acc += x[j] * wr[j];
        }
        *o = acc;
    }
}

/// RMSNorm: `x * g / sqrt(mean(x^2) + eps)`.
pub fn rmsnorm(x: &mut [f32], gain: &[f32], eps: f32) {
    assert_eq!(x.len(), gain.len());
    let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for (v, g) in x.iter_mut().zip(gain) {
        *v *= inv * g;
    }
}

/// Numerically-stable in-place softmax.
pub fn softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in x.iter_mut() {
        *v /= sum;
    }
}

/// SiLU activation: `x * sigmoid(x)`.
#[must_use]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Apply rotary position embedding to a head vector of even length at
/// sequence position `pos`, with base `theta` (Llama uses 10000).
pub fn rope(head: &mut [f32], pos: usize, theta: f32) {
    let d = head.len();
    assert_eq!(d % 2, 0, "rope needs even head dim");
    for i in (0..d).step_by(2) {
        #[allow(clippy::cast_precision_loss)]
        let freq = 1.0 / theta.powf(i as f32 / d as f32);
        #[allow(clippy::cast_precision_loss)]
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let (a, b) = (head[i], head[i + 1]);
        head[i] = a * cos - b * sin;
        head[i + 1] = a * sin + b * cos;
    }
}

/// Argmax index of a slice (ties broken by lowest index).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in x.iter().enumerate() {
        if *v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_identity() {
        let mut w = Matrix::zeros(3, 3);
        for i in 0..3 {
            w.set(i, i, 1.0);
        }
        let mut out = [0.0; 3];
        gemv(&[1.0, 2.0, 3.0], &w, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn gemv_matches_naive() {
        let w = Matrix::from_vec(2, 5, (0..10).map(|i| i as f32 * 0.5).collect());
        let x: Vec<f32> = (0..5).map(|i| 1.0 - i as f32 * 0.1).collect();
        let mut out = [0.0; 2];
        gemv(&x, &w, &mut out);
        for (r, got) in out.iter().enumerate() {
            let expect: f32 = (0..5).map(|c| x[c] * w.get(r, c)).sum();
            assert!((got - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut x = [1.0, 3.0, 2.0];
        softmax(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x[1] > x[2] && x[2] > x[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut x = [1000.0, 1000.0];
        softmax(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rmsnorm_unit_scale() {
        let mut x = vec![3.0, 4.0];
        let g = vec![1.0, 1.0];
        rmsnorm(&mut x, &g, 1e-6);
        // RMS of (3,4) is sqrt(12.5); normalized values keep the ratio.
        assert!((x[1] / x[0] - 4.0 / 3.0).abs() < 1e-5);
        let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / 2.0;
        assert!((ms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(5.0) > 4.9);
        assert!(silu(-5.0) > -0.05 && silu(-5.0) < 0.0);
    }

    #[test]
    fn rope_preserves_norm() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0];
        let before: f32 = h.iter().map(|v| v * v).sum();
        rope(&mut h, 17, 10000.0);
        let after: f32 = h.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-4);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0];
        let orig = h.clone();
        rope(&mut h, 0, 10000.0);
        for (a, b) in h.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_relative_property() {
        // Dot product of two rotated vectors depends only on the position
        // difference (the defining property of RoPE).
        let q = vec![0.5, -1.0];
        let k = vec![1.5, 0.25];
        let dot = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();
        let mut q1 = q.clone();
        let mut k1 = k.clone();
        rope(&mut q1, 5, 10000.0);
        rope(&mut k1, 3, 10000.0);
        let mut q2 = q.clone();
        let mut k2 = k.clone();
        rope(&mut q2, 12, 10000.0);
        rope(&mut k2, 10, 10000.0);
        assert!((dot(&q1, &k1) - dot(&q2, &k2)).abs() < 1e-4);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[2.0, 2.0]), 0);
    }
}
