//! Compute kernels: matmul (naive + tiled + batched), RMSNorm, softmax,
//! SiLU, RoPE.
//!
//! Two matmul families live here:
//!
//! * [`gemv`] — the original scalar reference kernel: one chained
//!   accumulator per output row. The chain serializes every add behind
//!   the previous one, so the compiler cannot vectorize it; it runs at
//!   FP-add latency, far below memory bandwidth. Kept as the correctness
//!   oracle and the "naive" baseline in `bench_infer`.
//! * [`gemv_tiled`] / [`gemm`] — the production path: both reduce each
//!   `(output row, input row)` pair with the same `dot_lanes` routine
//!   ([`LANES`] independent partial sums + a fixed pairwise reduction),
//!   which the compiler auto-vectorizes. Because the per-pair summation
//!   order is byte-for-byte shared, batched/chunked forwards built on
//!   `gemm` are **bit-identical** to single-token forwards built on
//!   `gemv_tiled`. Versus `gemv` the sum is reassociated, so results may
//!   differ from the naive kernel by float rounding; the property suite
//!   (`tests/prop_kernels.rs`) pins that drift to ≤1e-5 relative error.

use crate::tensor::Matrix;

/// Independent accumulator lanes in `dot_lanes`. Sixty-four f32 lanes
/// give the compiler eight independent 8-wide (or four 16-wide) vector
/// FMA chains — enough to hide FMA latency and saturate the load ports.
/// A single vector register's worth of lanes would collapse back into
/// one chain and run at FP-add latency instead of FMA throughput; more
/// than one row's worth of 64-lane accumulators (e.g. a paired-row
/// kernel) overflows the vector register file and spills the hot loop
/// to the stack, which measures *slower* than single-row reduction.
pub const LANES: usize = 64;

/// Lane-parallel dot product with a fixed reduction order.
///
/// Element `i` always lands in lane `i % LANES` (the tail continues the
/// same interleave), and lanes reduce with the fixed halving-fold tree
/// of `reduce_lanes`. Keeping this order fixed is what makes every
/// tiled/batched kernel bit-identical to every other: they all call
/// this one routine per (row, input) pair.
#[inline(always)]
pub(crate) fn dot_lanes(x: &[f32], w: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), w.len());
    let mut lanes = [0.0f32; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut wc = w.chunks_exact(LANES);
    for (xs, ws) in (&mut xc).zip(&mut wc) {
        // Fixed-size views (always exact from `chunks_exact`): the
        // compiler sees the extent and drops per-element bounds checks.
        let xs: &[f32; LANES] = xs.try_into().expect("lane block");
        let ws: &[f32; LANES] = ws.try_into().expect("lane block");
        for l in 0..LANES {
            // Explicit fused multiply-add: one rounding per element and
            // half the FP ops of mul+add. Rust never contracts
            // implicitly, so this is the only way to reach the FMA
            // units the roofline model assumes.
            lanes[l] = xs[l].mul_add(ws[l], lanes[l]);
        }
    }
    // Ragged tail: stage the products in a scratch block, then fold
    // them in with constant lane indices. A dynamically-indexed write
    // into `lanes` anywhere in this function would spill the whole
    // accumulator array to the stack and serialize the hot loop above.
    let (xr, wr) = (xc.remainder(), wc.remainder());
    if !xr.is_empty() {
        let mut tail = [0.0f32; LANES];
        for ((t, xi), wi) in tail.iter_mut().zip(xr).zip(wr) {
            *t = xi * wi;
        }
        merge_tail(&mut lanes, &tail, xr.len());
    }
    reduce_lanes(&lanes)
}

/// Fold a staged tail block into the lane accumulators. Only the first
/// `n` entries are live; the guard (rather than a `0..n` bound) keeps
/// every index constant so the accumulators stay in registers.
#[inline(always)]
pub(crate) fn merge_tail(lanes: &mut [f32; LANES], tail: &[f32; LANES], n: usize) {
    for l in 0..LANES {
        if l < n {
            lanes[l] += tail[l];
        }
    }
}

/// Fixed tree reduction of the lane accumulators by halving folds:
/// `buf[i] += buf[i + width]` for `width = 32, 16, .., 1`. Both
/// operands of every level are contiguous runs, so each level is a
/// plain vector add (a stride-2 pairwise tree would reduce scalarly).
/// Cold epilogue, one call per (row, input) pair.
#[inline(always)]
pub(crate) fn reduce_lanes(lanes: &[f32; LANES]) -> f32 {
    let mut buf = *lanes;
    let mut width = LANES;
    while width > 1 {
        width /= 2;
        for i in 0..width {
            buf[i] += buf[i + width];
        }
    }
    buf[0]
}

/// Output rows walked per tile in [`gemv_tiled`]: a small block of
/// weight rows reduces back-to-back against the same (cache-hot) input
/// vector before moving on, keeping the input resident in L1 while the
/// weight stream provides all the memory traffic.
pub const TILE_ROWS: usize = 4;

/// Tiled `out = x · w^T`: same contract as [`gemv`], but weight rows are
/// walked in [`TILE_ROWS`] blocks and each row reduces in the
/// `dot_lanes` order. This is the kernel behind `Linear::F32`.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn gemv_tiled(x: &[f32], w: &Matrix, out: &mut [f32]) {
    assert_eq!(x.len(), w.cols, "gemv input dim");
    assert_eq!(out.len(), w.rows, "gemv output dim");
    for (t, block) in out.chunks_mut(TILE_ROWS).enumerate() {
        let base = t * TILE_ROWS;
        for (i, o) in block.iter_mut().enumerate() {
            *o = dot_lanes(x, w.row(base + i));
        }
    }
}

/// Cache-blocked batched matmul: `out[b] = xs[b] · w^T` for every input
/// row `b`. The outer loop walks weight rows so each row of `w` is
/// streamed from memory once and reused across the whole batch from
/// cache — the weight-traffic amortization that batched decode buys.
/// Every `(row, input)` pair reduces in the `dot_lanes` order, so
/// `gemm` over a batch is bit-identical to [`gemv_tiled`] per input row.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn gemm(xs: &Matrix, w: &Matrix, out: &mut Matrix) {
    assert_eq!(xs.cols, w.cols, "gemm input dim");
    assert_eq!(out.rows, xs.rows, "gemm batch dim");
    assert_eq!(out.cols, w.rows, "gemm output dim");
    for r in 0..w.rows {
        let wr = w.row(r);
        for b in 0..xs.rows {
            out.row_mut(b)[r] = dot_lanes(xs.row(b), wr);
        }
    }
}

/// `out = x · w^T` for a single input row `x` (`1 x in`), with `w` stored
/// as `out_dim x in_dim` (each row of `w` is one output neuron) — the
/// GEMV at the heart of decode.
///
/// This is the scalar **reference** kernel (chained accumulator, no lane
/// parallelism); the hot path uses [`gemv_tiled`].
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn gemv(x: &[f32], w: &Matrix, out: &mut [f32]) {
    assert_eq!(x.len(), w.cols, "gemv input dim");
    assert_eq!(out.len(), w.rows, "gemv output dim");
    for (row, o) in out.iter_mut().enumerate() {
        let wr = w.row(row);
        // One strictly-ordered accumulator chain: every add waits on the
        // previous one, so the kernel runs at FP-add latency — the
        // textbook baseline the tiled kernel is measured against.
        let mut acc = 0.0f32;
        for (xi, wi) in x.iter().zip(wr) {
            acc += xi * wi;
        }
        *o = acc;
    }
}

/// RMSNorm: `x * g / sqrt(mean(x^2) + eps)`.
pub fn rmsnorm(x: &mut [f32], gain: &[f32], eps: f32) {
    assert_eq!(x.len(), gain.len());
    let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for (v, g) in x.iter_mut().zip(gain) {
        *v *= inv * g;
    }
}

/// Numerically-stable in-place softmax.
pub fn softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in x.iter_mut() {
        *v /= sum;
    }
}

/// SiLU activation: `x * sigmoid(x)`.
#[must_use]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Apply rotary position embedding to a head vector of even length at
/// sequence position `pos`, with base `theta` (Llama uses 10000).
pub fn rope(head: &mut [f32], pos: usize, theta: f32) {
    let d = head.len();
    assert_eq!(d % 2, 0, "rope needs even head dim");
    for i in (0..d).step_by(2) {
        #[allow(clippy::cast_precision_loss)]
        let freq = 1.0 / theta.powf(i as f32 / d as f32);
        #[allow(clippy::cast_precision_loss)]
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let (a, b) = (head[i], head[i + 1]);
        head[i] = a * cos - b * sin;
        head[i + 1] = a * sin + b * cos;
    }
}

/// Argmax index of a slice (ties broken by lowest index).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in x.iter().enumerate() {
        if *v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_identity() {
        let mut w = Matrix::zeros(3, 3);
        for i in 0..3 {
            w.set(i, i, 1.0);
        }
        let mut out = [0.0; 3];
        gemv(&[1.0, 2.0, 3.0], &w, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn gemv_matches_naive() {
        let w = Matrix::from_vec(2, 5, (0..10).map(|i| i as f32 * 0.5).collect());
        let x: Vec<f32> = (0..5).map(|i| 1.0 - i as f32 * 0.1).collect();
        let mut out = [0.0; 2];
        gemv(&x, &w, &mut out);
        for (r, got) in out.iter().enumerate() {
            let expect: f32 = (0..5).map(|c| x[c] * w.get(r, c)).sum();
            assert!((got - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut x = [1.0, 3.0, 2.0];
        softmax(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x[1] > x[2] && x[2] > x[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut x = [1000.0, 1000.0];
        softmax(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rmsnorm_unit_scale() {
        let mut x = vec![3.0, 4.0];
        let g = vec![1.0, 1.0];
        rmsnorm(&mut x, &g, 1e-6);
        // RMS of (3,4) is sqrt(12.5); normalized values keep the ratio.
        assert!((x[1] / x[0] - 4.0 / 3.0).abs() < 1e-5);
        let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / 2.0;
        assert!((ms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(5.0) > 4.9);
        assert!(silu(-5.0) > -0.05 && silu(-5.0) < 0.0);
    }

    #[test]
    fn rope_preserves_norm() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0];
        let before: f32 = h.iter().map(|v| v * v).sum();
        rope(&mut h, 17, 10000.0);
        let after: f32 = h.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-4);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0];
        let orig = h.clone();
        rope(&mut h, 0, 10000.0);
        for (a, b) in h.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_relative_property() {
        // Dot product of two rotated vectors depends only on the position
        // difference (the defining property of RoPE).
        let q = vec![0.5, -1.0];
        let k = vec![1.5, 0.25];
        let dot = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();
        let mut q1 = q.clone();
        let mut k1 = k.clone();
        rope(&mut q1, 5, 10000.0);
        rope(&mut k1, 3, 10000.0);
        let mut q2 = q.clone();
        let mut k2 = k.clone();
        rope(&mut q2, 12, 10000.0);
        rope(&mut k2, 10, 10000.0);
        assert!((dot(&q1, &k1) - dot(&q2, &k2)).abs() < 1e-4);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[2.0, 2.0]), 0);
    }

    #[test]
    fn tiled_gemv_tracks_naive() {
        // 13 cols: not a multiple of LANES; 6 rows: not a multiple of
        // TILE_ROWS.
        let w = Matrix::from_vec(6, 13, (0..78).map(|i| (i as f32 * 0.713).sin()).collect());
        let x: Vec<f32> = (0..13).map(|i| (i as f32 * 0.29).cos()).collect();
        let mut naive = vec![0.0; 6];
        gemv(&x, &w, &mut naive);
        let mut tiled = vec![0.0; 6];
        gemv_tiled(&x, &w, &mut tiled);
        for (n, t) in naive.iter().zip(&tiled) {
            assert!(
                (n - t).abs() <= 1e-5 * n.abs().max(1.0),
                "naive {n} tiled {t}"
            );
        }
    }

    #[test]
    fn gemm_rows_bit_identical_to_tiled_gemv() {
        let w = Matrix::from_vec(5, 19, (0..95).map(|i| (i as f32 * 0.37).sin()).collect());
        let xs = Matrix::from_vec(3, 19, (0..57).map(|i| (i as f32 * 0.11).cos()).collect());
        let mut out = Matrix::zeros(3, 5);
        gemm(&xs, &w, &mut out);
        for b in 0..3 {
            let mut single = vec![0.0; 5];
            gemv_tiled(xs.row(b), &w, &mut single);
            assert_eq!(out.row(b), &single[..], "batch row {b} diverged");
        }
    }

    #[test]
    fn tiled_kernels_handle_empty_and_tiny_shapes() {
        let w = Matrix::zeros(0, 7);
        let x = vec![1.0; 7];
        let mut out: Vec<f32> = Vec::new();
        gemv_tiled(&x, &w, &mut out);
        assert!(out.is_empty());

        let w1 = Matrix::from_vec(1, 1, vec![2.5]);
        let mut o1 = [0.0];
        gemv_tiled(&[4.0], &w1, &mut o1);
        assert_eq!(o1[0], 10.0);

        let we = Matrix::zeros(3, 0);
        let xe: Vec<f32> = Vec::new();
        let mut oe = [9.0; 3];
        gemv_tiled(&xe, &we, &mut oe);
        assert_eq!(oe, [0.0; 3]);

        let mut empty_batch = Matrix::zeros(0, 4);
        gemm(
            &Matrix::zeros(0, 7),
            &Matrix::from_vec(4, 7, vec![1.0; 28]),
            &mut empty_batch,
        );
        assert_eq!(empty_batch.rows, 0);
    }
}
