//! A functional, pure-Rust transformer inference engine.
//!
//! The performance study in `cllm-perf` models Llama-class inference
//! analytically; this crate complements it with a *real, executable*
//! engine so the confidential pipeline in `cllm-core` can demonstrably
//! decrypt weights inside an enclave, run a forward pass, and produce
//! tokens — end to end, with no external ML framework.
//!
//! It implements, from scratch:
//!
//! * [`tensor`] — a minimal row-major f32 tensor.
//! * [`kernels`] — blocked matmul, RMSNorm, softmax, SiLU, rotary position
//!   embeddings, and the attention primitive.
//! * [`quant`] — per-row int8 weight quantization with f32 accumulation,
//!   mirroring the paper's int8 deployments.
//! * [`model`] — a Llama-architecture decoder (RMSNorm → QKV → RoPE →
//!   attention with KV cache → gated SiLU MLP) at any size; deterministic
//!   weight initialization for reproducible tests.
//! * [`tokenizer`] — byte-level tokenizer with trainable BPE merges.
//! * [`generate`] — greedy and temperature sampling loops.
//!
//! The engine is deliberately small-scale (tests run models with
//! hidden sizes of 64-128), but architecturally faithful: the same
//! operator sequence whose FLOP/byte counts `cllm-workload` prices.
//!
//! # Example
//!
//! ```
//! use cllm_infer::model::{TinyConfig, TinyModel};
//! use cllm_infer::generate::{generate, Sampling};
//!
//! let config = TinyConfig::test_small();
//! let model = TinyModel::init(&config, 42);
//! let out = generate(&model, &[1, 2, 3], 8, Sampling::Greedy, 0);
//! assert_eq!(out.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod kernels;
pub mod model;
pub mod quant;
pub mod sampling;
pub mod serialize;
pub mod tensor;
pub mod tokenizer;
