//! A functional, pure-Rust transformer inference engine.
//!
//! The performance study in `cllm-perf` models Llama-class inference
//! analytically; this crate complements it with a *real, executable*
//! engine so the confidential pipeline in `cllm-core` can demonstrably
//! decrypt weights inside an enclave, run a forward pass, and produce
//! tokens — end to end, with no external ML framework.
//!
//! It implements, from scratch:
//!
//! * [`tensor`] — a minimal row-major f32 tensor.
//! * [`kernels`] — tiled/blocked matmul (lane-parallel GEMV, batched
//!   GEMM, plus the scalar reference kernel), RMSNorm, softmax, SiLU,
//!   rotary position embeddings, and the attention primitive.
//! * [`quant`] — group-wise int8 and packed int4 weight quantization
//!   with fused dequant kernels and f32 accumulation, mirroring the
//!   paper's quantized deployments.
//! * [`model`] — a Llama-architecture decoder (RMSNorm → QKV → RoPE →
//!   attention with KV cache → gated SiLU MLP) at any size; deterministic
//!   weight initialization for reproducible tests; single-token, chunked
//!   and batched forwards that are bit-identical per token.
//! * [`tokenizer`] — byte-level tokenizer with trainable BPE merges.
//! * [`generate`] — greedy and temperature sampling loops.
//! * [`speculative`] — draft-k/verify/accept-prefix speculative decoding,
//!   token-identical to vanilla decode by construction.
//!
//! The engine runs small-scale in tests (hidden sizes of 64-128) but is
//! architecturally faithful: the same operator sequence whose FLOP/byte
//! counts `cllm-workload` prices. `bench_infer` (in `cllm-bench`) times
//! the kernels at weight-bound shapes and pins tokens/sec floors in
//! `BENCH_infer.json`, which `cllm_perf::calib::measured` compares
//! against the analytical roofline.
//!
//! # Example
//!
//! ```
//! use cllm_infer::model::{TinyConfig, TinyModel};
//! use cllm_infer::generate::{generate, Sampling};
//!
//! let config = TinyConfig::test_small();
//! let model = TinyModel::init(&config, 42);
//! let out = generate(&model, &[1, 2, 3], 8, Sampling::Greedy, 0);
//! assert_eq!(out.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod kernels;
pub mod model;
pub mod quant;
pub mod sampling;
pub mod serialize;
pub mod speculative;
pub mod tensor;
pub mod tokenizer;
