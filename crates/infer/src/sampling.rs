//! Advanced sampling: top-k, nucleus (top-p), repetition penalty, and
//! batched generation — the production decoding controls of serving
//! frameworks like vLLM/IPEX that the basic `generate` loop omits.

use crate::kernels::{argmax, softmax};
use crate::model::{KvCache, TinyModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Full decoding parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingParams {
    /// Softmax temperature (<= 0 or 1.0 means neutral; 0 disables
    /// sampling entirely, i.e. greedy).
    pub temperature: f32,
    /// Keep only the `k` most likely tokens (0 = disabled).
    pub top_k: usize,
    /// Keep the smallest set of tokens with cumulative probability `p`
    /// (1.0 = disabled).
    pub top_p: f32,
    /// Divide the logits of already-generated tokens by this factor
    /// (1.0 = disabled); discourages loops.
    pub repetition_penalty: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            temperature: 1.0,
            top_k: 0,
            top_p: 1.0,
            repetition_penalty: 1.0,
            seed: 0,
        }
    }
}

impl SamplingParams {
    /// Greedy decoding.
    #[must_use]
    pub fn greedy() -> Self {
        SamplingParams {
            temperature: 0.0,
            ..Self::default()
        }
    }
}

/// Select the next token from raw logits under the given parameters,
/// given the tokens generated so far (for the repetition penalty).
///
/// # Panics
///
/// Panics on empty logits.
#[must_use]
pub fn sample_next(
    logits: &[f32],
    history: &[usize],
    params: &SamplingParams,
    rng: &mut StdRng,
) -> usize {
    assert!(!logits.is_empty(), "empty logits");
    let mut work: Vec<f32> = logits.to_vec();

    // Repetition penalty (CTRL-style): shrink positive logits, grow
    // negative ones for seen tokens.
    if params.repetition_penalty != 1.0 {
        for &t in history {
            if let Some(v) = work.get_mut(t) {
                *v = if *v > 0.0 {
                    *v / params.repetition_penalty
                } else {
                    *v * params.repetition_penalty
                };
            }
        }
    }

    if params.temperature <= 0.0 {
        return argmax(&work);
    }
    for v in work.iter_mut() {
        *v /= params.temperature;
    }

    // Rank tokens by logit.
    let mut order: Vec<usize> = (0..work.len()).collect();
    order.sort_by(|&a, &b| work[b].partial_cmp(&work[a]).expect("finite logits"));

    // Top-k cut.
    let k = if params.top_k == 0 {
        work.len()
    } else {
        params.top_k.min(work.len())
    };
    let mut kept = &order[..k];

    // Top-p (nucleus) cut over the kept set.
    let mut probs: Vec<f32> = kept.iter().map(|&i| work[i]).collect();
    softmax(&mut probs);
    if params.top_p < 1.0 {
        let mut cum = 0.0;
        let mut cut = probs.len();
        for (i, p) in probs.iter().enumerate() {
            cum += p;
            if cum >= params.top_p {
                cut = i + 1;
                break;
            }
        }
        kept = &kept[..cut];
        probs.truncate(cut);
        let total: f32 = probs.iter().sum();
        for p in probs.iter_mut() {
            *p /= total;
        }
    }

    // Inverse-CDF draw.
    let u: f64 = rng.random();
    let mut acc = 0.0f64;
    for (i, &p) in probs.iter().enumerate() {
        acc += f64::from(p);
        if u < acc {
            return kept[i];
        }
    }
    kept[kept.len() - 1]
}

/// Generate with full sampling controls; returns only new tokens.
#[must_use]
pub fn generate_with(
    model: &TinyModel,
    prompt: &[usize],
    max_new: usize,
    params: &SamplingParams,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut cache = model.new_cache();
    let mut logits = vec![0.0; model.config.vocab];
    for &t in prompt {
        logits = model.forward(t, &mut cache);
    }
    let mut out = Vec::with_capacity(max_new);
    for _ in 0..max_new {
        let next = sample_next(&logits, &out, params, &mut rng);
        out.push(next);
        if cache.len >= model.config.max_seq {
            break;
        }
        logits = model.forward(next, &mut cache);
    }
    out
}

/// Generate continuations for several prompts (each with its own KV
/// cache), like a static-batched serving step. Returns one output
/// sequence per prompt.
///
/// Prompts prefill through `forward_chunk` and the lockstep decode
/// advances all live sequences with one `forward_batch` per step, so
/// model weights stream from memory once per step instead of once per
/// sequence — the amortization `cllm-perf` prices for batched decode.
/// Results are bit-identical to per-sequence decoding (the batched
/// kernels share the per-row reduction order), and the RNG draw order
/// matches the previous per-sequence loop exactly.
#[must_use]
pub fn generate_batch(
    model: &TinyModel,
    prompts: &[Vec<usize>],
    max_new: usize,
    params: &SamplingParams,
) -> Vec<Vec<usize>> {
    let mut caches: Vec<KvCache> = Vec::with_capacity(prompts.len());
    let mut logits: Vec<Vec<f32>> = Vec::with_capacity(prompts.len());
    let mut outs: Vec<Vec<usize>> = Vec::with_capacity(prompts.len());
    for prompt in prompts {
        let mut cache = model.new_cache();
        let l = if prompt.is_empty() {
            vec![0.0; model.config.vocab]
        } else {
            let rows = model.forward_chunk(prompt, &mut cache);
            rows.row(prompt.len() - 1).to_vec()
        };
        caches.push(cache);
        logits.push(l);
        outs.push(Vec::with_capacity(max_new));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    for _ in 0..max_new {
        // Sample every live sequence first — sequence order fixes the RNG
        // draw order — then advance them all in one batched forward.
        let mut live: Vec<usize> = Vec::with_capacity(prompts.len());
        let mut step: Vec<usize> = Vec::with_capacity(prompts.len());
        for i in 0..prompts.len() {
            if caches[i].len >= model.config.max_seq {
                continue;
            }
            let next = sample_next(&logits[i], &outs[i], params, &mut rng);
            outs[i].push(next);
            live.push(i);
            step.push(next);
        }
        if live.is_empty() {
            break;
        }
        let mut gathered: Vec<&mut KvCache> = Vec::with_capacity(live.len());
        {
            let mut rest = &mut caches[..];
            let mut offset = 0usize;
            for &i in &live {
                let (_, tail) = rest.split_at_mut(i - offset);
                let (cache, tail) = tail.split_first_mut().expect("live index in range");
                gathered.push(cache);
                rest = tail;
                offset = i + 1;
            }
        }
        let rows = model.forward_batch(&step, &mut gathered);
        for (slot, &i) in live.iter().enumerate() {
            logits[i] = rows.row(slot).to_vec();
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TinyConfig;

    fn model() -> TinyModel {
        TinyModel::init(&TinyConfig::test_small(), 77)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn greedy_matches_argmax() {
        let logits = vec![0.1, 2.0, -1.0, 0.5];
        let t = sample_next(&logits, &[], &SamplingParams::greedy(), &mut rng());
        assert_eq!(t, 1);
    }

    #[test]
    fn top_k_restricts_support() {
        let logits = vec![5.0, 4.0, -10.0, -10.0];
        let params = SamplingParams {
            top_k: 2,
            temperature: 2.0,
            ..SamplingParams::default()
        };
        let mut r = rng();
        for _ in 0..100 {
            let t = sample_next(&logits, &[], &params, &mut r);
            assert!(t < 2, "token {t} outside top-2");
        }
    }

    #[test]
    fn top_p_restricts_support() {
        // One dominant token (p > 0.9): nucleus with p=0.5 keeps only it.
        let logits = vec![10.0, 0.0, 0.0, 0.0];
        let params = SamplingParams {
            top_p: 0.5,
            ..SamplingParams::default()
        };
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(sample_next(&logits, &[], &params, &mut r), 0);
        }
    }

    #[test]
    fn repetition_penalty_discourages_loops() {
        let logits = vec![3.0, 2.9, 0.0];
        // Token 0 was just emitted; a strong penalty should flip the
        // greedy choice to token 1.
        let params = SamplingParams {
            temperature: 0.0,
            repetition_penalty: 2.0,
            ..SamplingParams::default()
        };
        let t = sample_next(&logits, &[0], &params, &mut rng());
        assert_eq!(t, 1);
    }

    #[test]
    fn generate_with_deterministic_per_seed() {
        let m = model();
        let p = SamplingParams {
            temperature: 1.2,
            top_k: 40,
            top_p: 0.95,
            repetition_penalty: 1.1,
            seed: 9,
        };
        assert_eq!(
            generate_with(&m, &[1, 2], 12, &p),
            generate_with(&m, &[1, 2], 12, &p)
        );
    }

    #[test]
    fn batch_matches_shapes() {
        let m = model();
        let prompts = vec![vec![1usize, 2], vec![3, 4, 5], vec![6]];
        let outs = generate_batch(&m, &prompts, 6, &SamplingParams::greedy());
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|o| o.len() == 6));
    }

    #[test]
    fn batch_greedy_matches_individual_greedy() {
        // With greedy decoding, batching must not change results.
        let m = model();
        let prompts = vec![vec![1usize, 2], vec![9, 8]];
        let batched = generate_batch(&m, &prompts, 5, &SamplingParams::greedy());
        for (prompt, expect) in prompts.iter().zip(&batched) {
            let solo = generate_with(&m, prompt, 5, &SamplingParams::greedy());
            assert_eq!(&solo, expect);
        }
    }

    #[test]
    fn max_seq_respected() {
        let m = model();
        let long_prompt: Vec<usize> = (0..120).map(|i| i % 200).collect();
        let out = generate_with(&m, &long_prompt, 50, &SamplingParams::greedy());
        assert!(long_prompt.len() + out.len() <= m.config.max_seq + 1);
    }
}
