//! Byte-level tokenizer with trainable BPE merges.
//!
//! Token ids 0-255 are raw bytes; ids 256+ are learned byte-pair merges.
//! This is the same construction as GPT-2/Llama byte-level BPE, scaled
//! down, and is what the examples use to feed real text through the
//! confidential pipeline.

use std::collections::HashMap;

/// A trained byte-pair-encoding tokenizer.
#[derive(Debug, Clone, PartialEq)]
pub struct BpeTokenizer {
    /// Learned merges in training order: (left, right) -> new id.
    merges: Vec<(usize, usize)>,
    /// Lookup from pair to merged id.
    merge_ids: HashMap<(usize, usize), usize>,
}

impl BpeTokenizer {
    /// A bytes-only tokenizer (no merges).
    #[must_use]
    pub fn bytes_only() -> Self {
        BpeTokenizer {
            merges: Vec::new(),
            merge_ids: HashMap::new(),
        }
    }

    /// Train `num_merges` BPE merges on a corpus.
    #[must_use]
    pub fn train(corpus: &str, num_merges: usize) -> Self {
        let mut tokens: Vec<usize> = corpus.bytes().map(usize::from).collect();
        let mut merges = Vec::with_capacity(num_merges);
        let mut merge_ids = HashMap::new();
        for step in 0..num_merges {
            let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
            for w in tokens.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0) += 1;
            }
            // Deterministic tie-break: highest count, then lowest pair.
            let Some((&pair, &count)) = counts
                .iter()
                .max_by_key(|(&(a, b), &c)| (c, std::cmp::Reverse((a, b))))
            else {
                break;
            };
            if count < 2 {
                break;
            }
            let new_id = 256 + step;
            merges.push(pair);
            merge_ids.insert(pair, new_id);
            tokens = merge_once(&tokens, pair, new_id);
        }
        BpeTokenizer { merges, merge_ids }
    }

    /// Vocabulary size (256 bytes + merges).
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        256 + self.merges.len()
    }

    /// Encode text to token ids.
    #[must_use]
    pub fn encode(&self, text: &str) -> Vec<usize> {
        let mut tokens: Vec<usize> = text.bytes().map(usize::from).collect();
        for (i, &pair) in self.merges.iter().enumerate() {
            tokens = merge_once(&tokens, pair, 256 + i);
        }
        tokens
    }

    /// Decode token ids back to text (lossy on invalid UTF-8).
    #[must_use]
    pub fn decode(&self, tokens: &[usize]) -> String {
        let mut bytes = Vec::new();
        for &t in tokens {
            self.expand(t, &mut bytes);
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn expand(&self, token: usize, out: &mut Vec<u8>) {
        if token < 256 {
            #[allow(clippy::cast_possible_truncation)]
            out.push(token as u8);
        } else if let Some(&(a, b)) = self.merges.get(token - 256) {
            self.expand(a, out);
            self.expand(b, out);
        }
    }
}

fn merge_once(tokens: &[usize], pair: (usize, usize), new_id: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if i + 1 < tokens.len() && (tokens[i], tokens[i + 1]) == pair {
            out.push(new_id);
            i += 2;
        } else {
            out.push(tokens[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &str = "the patient presented with the same symptoms as the other patient";

    #[test]
    fn bytes_only_roundtrip() {
        let t = BpeTokenizer::bytes_only();
        let ids = t.encode("hello, enclave!");
        assert_eq!(t.decode(&ids), "hello, enclave!");
        assert_eq!(ids.len(), 15);
    }

    #[test]
    fn trained_roundtrip_exact() {
        let t = BpeTokenizer::train(CORPUS, 20);
        for text in [CORPUS, "the the the", "unseen words entirely", ""] {
            assert_eq!(t.decode(&t.encode(text)), text, "{text}");
        }
    }

    #[test]
    fn merges_compress() {
        let t = BpeTokenizer::train(CORPUS, 30);
        let plain = BpeTokenizer::bytes_only().encode(CORPUS).len();
        let merged = t.encode(CORPUS).len();
        assert!(merged < plain, "BPE should compress: {merged} !< {plain}");
    }

    #[test]
    fn training_is_deterministic() {
        let a = BpeTokenizer::train(CORPUS, 10);
        let b = BpeTokenizer::train(CORPUS, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn vocab_size_tracks_merges() {
        let t = BpeTokenizer::train(CORPUS, 5);
        assert!(t.vocab_size() >= 256 && t.vocab_size() <= 261);
    }

    #[test]
    fn utf8_text_roundtrips() {
        let t = BpeTokenizer::train("héllo wörld héllo wörld", 8);
        let s = "héllo wörld";
        assert_eq!(t.decode(&t.encode(s)), s);
    }
}
