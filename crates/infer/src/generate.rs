//! Token generation loops: greedy and temperature sampling.

use crate::kernels::{argmax, softmax};
use crate::model::TinyModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Always pick the argmax token (deterministic).
    Greedy,
    /// Softmax sampling at the given temperature (> 0).
    Temperature(f32),
}

/// Pick the next token from `logits` under `sampling`, consuming exactly
/// one RNG draw for [`Sampling::Temperature`] and none for
/// [`Sampling::Greedy`].
///
/// This is the **only** function that maps logits + RNG state to a
/// token, shared by [`generate`] and `speculative::speculative_generate`
/// — the per-emitted-token draw discipline is what makes speculative
/// decoding reproduce vanilla decode draw-for-draw.
pub(crate) fn next_token(logits: &[f32], sampling: Sampling, rng: &mut StdRng) -> usize {
    match sampling {
        Sampling::Greedy => argmax(logits),
        Sampling::Temperature(temp) => {
            let mut probs = logits.to_vec();
            for p in probs.iter_mut() {
                *p /= temp.max(1e-4);
            }
            softmax(&mut probs);
            sample_index(&probs, rng.random::<f64>())
        }
    }
}

/// Generate `max_new` tokens after feeding `prompt`, returning only the
/// newly generated tokens. `seed` drives temperature sampling (ignored
/// for greedy).
///
/// # Panics
///
/// Panics if the prompt plus generation exceeds the model's `max_seq`.
#[must_use]
pub fn generate(
    model: &TinyModel,
    prompt: &[usize],
    max_new: usize,
    sampling: Sampling,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cache = model.new_cache();
    let mut logits = vec![0.0; model.config.vocab];
    for &t in prompt {
        logits = model.forward(t, &mut cache);
    }
    let mut out = Vec::with_capacity(max_new);
    for _ in 0..max_new {
        let next = next_token(&logits, sampling, &mut rng);
        out.push(next);
        logits = model.forward(next, &mut cache);
    }
    out
}

/// Inverse-CDF sampling of an index from a probability vector.
pub(crate) fn sample_index(probs: &[f32], u: f64) -> usize {
    let mut acc = 0.0f64;
    for (i, &p) in probs.iter().enumerate() {
        acc += f64::from(p);
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TinyConfig;

    fn model() -> TinyModel {
        TinyModel::init(&TinyConfig::test_small(), 99)
    }

    #[test]
    fn greedy_is_deterministic() {
        let m = model();
        let a = generate(&m, &[1, 2, 3], 10, Sampling::Greedy, 0);
        let b = generate(&m, &[1, 2, 3], 10, Sampling::Greedy, 7);
        assert_eq!(a, b, "greedy must ignore the seed");
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn temperature_is_seed_deterministic() {
        let m = model();
        let a = generate(&m, &[4], 12, Sampling::Temperature(1.0), 5);
        let b = generate(&m, &[4], 12, Sampling::Temperature(1.0), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let m = model();
        let a = generate(&m, &[4], 16, Sampling::Temperature(2.0), 1);
        let b = generate(&m, &[4], 16, Sampling::Temperature(2.0), 2);
        assert_ne!(a, b, "high-temperature sampling should vary by seed");
    }

    #[test]
    fn prompts_steer_generation() {
        let m = model();
        let a = generate(&m, &[10, 20], 8, Sampling::Greedy, 0);
        let b = generate(&m, &[30, 40], 8, Sampling::Greedy, 0);
        assert_ne!(a, b, "different prompts should diverge");
    }

    #[test]
    fn tokens_in_vocabulary() {
        let m = model();
        let out = generate(&m, &[0], 20, Sampling::Temperature(1.5), 3);
        assert!(out.iter().all(|&t| t < m.config.vocab));
    }

    #[test]
    fn sample_index_edges() {
        assert_eq!(sample_index(&[0.5, 0.5], 0.0), 0);
        assert_eq!(sample_index(&[0.5, 0.5], 0.99), 1);
        assert_eq!(sample_index(&[1.0], 2.0), 0);
    }
}
