//! Group-wise int8 and int4 weight quantization with f32 accumulation.
//!
//! The paper's int8 deployments quantize model weights post-training;
//! activations and accumulation stay in higher precision. This module
//! implements that scheme with production layout choices:
//!
//! * **Group-wise scales.** Each weight row is split into groups of
//!   [`GROUP`] columns and every `(row, group)` pair gets its own f32
//!   scale (`max(|group|)/127` for int8, `max(|group|)/7` for int4).
//!   A single per-row scale lets one outlier wreck the whole row; a
//!   per-group scale bounds the damage to one group — the standard
//!   trick behind GPTQ/AWQ-style weight-only quantization.
//! * **Fused dequant-GEMV/GEMM.** The quantized kernels dequantize in
//!   registers — each product applies the group scale as `x * (q * s)`
//!   inside a row-long lane accumulator block — so f32 weights are
//!   never materialized in memory. The int4 kernel unpacks two nibbles
//!   per byte on the fly through a staged lane block.
//! * **Packed int4.** [`Quant4Matrix`] stores two 4-bit codes per byte
//!   (element `2j` in the low nibble, `2j+1` in the high nibble, biased
//!   by +8), with an odd-column remainder occupying a half-used final
//!   byte per row — `storage_bytes` accounts for it exactly.
//!
//! Error bounds: round-to-nearest against a group scale `s` gives
//! `|v - dequant(quant(v))| <= s/2`, i.e. `max|group|/254` for int8 and
//! `max|group|/14` for int4. The test suite pins both bounds on
//! adversarial matrices (all-zero, single-outlier, alternating-sign).

use crate::kernels::{merge_tail, reduce_lanes, LANES};
use crate::tensor::Matrix;

/// Columns per quantization group. 64 matches the engine's smallest
/// hidden size and divides every dimension the models use; ragged final
/// groups (cols not a multiple of 64) are still handled.
pub const GROUP: usize = 64;

/// Number of groups in a row of `cols` columns.
#[must_use]
fn groups_of(cols: usize) -> usize {
    cols.div_ceil(GROUP).max(1)
}

// `GROUP` must be a multiple of `kernels::LANES`: the quantized dot
// kernels keep one lane accumulator per column-mod-LANES across the
// whole row and look the group scale up per lane block, so a lane
// block must never straddle a group boundary.
const _: () = assert!(
    GROUP.is_multiple_of(LANES),
    "quant GROUP must be a multiple of kernels::LANES"
);

/// An int8-quantized matrix with one f32 scale per `(row, group)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// Quantize an f32 matrix with group-wise scales.
    #[must_use]
    pub fn quantize(m: &Matrix) -> Self {
        let ngroups = groups_of(m.cols);
        let mut data = Vec::with_capacity(m.rows * m.cols);
        let mut scales = Vec::with_capacity(m.rows * ngroups);
        for r in 0..m.rows {
            let row = m.row(r);
            for g in 0..ngroups {
                let start = g * GROUP;
                let end = (start + GROUP).min(m.cols);
                let group = &row[start..end];
                let max = group.iter().fold(0.0f32, |a, v| a.max(v.abs()));
                let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
                scales.push(scale);
                for &v in group {
                    let q = (v / scale).round().clamp(-127.0, 127.0);
                    #[allow(clippy::cast_possible_truncation)]
                    data.push(q as i8);
                }
            }
        }
        QuantMatrix {
            rows: m.rows,
            cols: m.cols,
            data,
            scales,
        }
    }

    /// Dequantize back to f32 (for error measurement and the fused-vs-
    /// unfused equivalence test).
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let ngroups = groups_of(self.cols);
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                let scale = self.scales[r * ngroups + c / GROUP];
                *v = f32::from(self.data[r * self.cols + c]) * scale;
            }
        }
        out
    }

    /// Fused per-row dot product: one [`LANES`]-wide f32 accumulator
    /// block spans the whole row (lane blocks never straddle a
    /// quantization group), with the group scale folded into each
    /// product in registers — f32 weights are never materialized.
    /// Shared by [`Self::gemv`] and [`Self::gemm`] so both are
    /// bit-identical per row.
    #[inline(always)]
    fn dot_row(&self, r: usize, x: &[f32]) -> f32 {
        let ngroups = groups_of(self.cols);
        let base = r * self.cols;
        let mut lanes = [0.0f32; LANES];
        let blocks = self.cols / LANES;
        for blk in 0..blocks {
            let start = blk * LANES;
            let s = self.scales[r * ngroups + start / GROUP];
            // Fixed-size views: the compiler sees the exact extent and
            // drops per-element bounds checks from the hot loop.
            let xs: &[f32; LANES] = x[start..start + LANES].try_into().expect("lane block");
            let qs: &[i8; LANES] = self.data[base + start..base + start + LANES]
                .try_into()
                .expect("lane block");
            for l in 0..LANES {
                lanes[l] = xs[l].mul_add(f32::from(qs[l]) * s, lanes[l]);
            }
        }
        // Ragged tail (always within one group): stage dequantized
        // products, then fold them in with constant lane indices (see
        // `kernels::dot_lanes` for why a dynamic index into `lanes`
        // is forbidden here).
        let start = blocks * LANES;
        if start < self.cols {
            let s = self.scales[r * ngroups + start / GROUP];
            let mut tail = [0.0f32; LANES];
            let xr = &x[start..];
            let qr = &self.data[base + start..base + self.cols];
            for ((t, xi), qi) in tail.iter_mut().zip(xr).zip(qr) {
                *t = xi * (f32::from(*qi) * s);
            }
            merge_tail(&mut lanes, &tail, self.cols - start);
        }
        reduce_lanes(&lanes)
    }

    /// `out = x · w^T` with on-the-fly dequantization and f32 accumulation.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn gemv(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "qgemv input dim");
        assert_eq!(out.len(), self.rows, "qgemv output dim");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.dot_row(r, x);
        }
    }

    /// Batched fused GEMM: `out[b] = xs[b] · w^T`, weight rows streamed
    /// once across the batch exactly like `kernels::gemm`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn gemm(&self, xs: &Matrix, out: &mut Matrix) {
        assert_eq!(xs.cols, self.cols, "qgemm input dim");
        assert_eq!(out.rows, xs.rows, "qgemm batch dim");
        assert_eq!(out.cols, self.rows, "qgemm output dim");
        for r in 0..self.rows {
            for b in 0..xs.rows {
                let v = self.dot_row(r, xs.row(b));
                out.row_mut(b)[r] = v;
            }
        }
    }

    /// Storage bytes (data + scales) — roughly a quarter of f32.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }
}

/// An int4-quantized matrix: two codes per byte, group-wise f32 scales.
///
/// Codes are symmetric round-to-nearest in `-7..=7` against the group
/// scale `max(|group|)/7`, stored biased by +8 (so `1..=15`; the nibble
/// value 0 is unused). Element `2j` of a row lives in the low nibble of
/// packed byte `j`, element `2j+1` in the high nibble; rows with odd
/// column counts leave the final high nibble zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Quant4Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    data: Vec<u8>,
    scales: Vec<f32>,
}

impl Quant4Matrix {
    /// Quantize an f32 matrix to packed int4 with group-wise scales.
    #[must_use]
    pub fn quantize(m: &Matrix) -> Self {
        let ngroups = groups_of(m.cols);
        let row_bytes = m.cols.div_ceil(2);
        let mut data = vec![0u8; m.rows * row_bytes];
        let mut scales = Vec::with_capacity(m.rows * ngroups);
        for r in 0..m.rows {
            let row = m.row(r);
            for g in 0..ngroups {
                let start = g * GROUP;
                let end = (start + GROUP).min(m.cols);
                let group = &row[start..end];
                let max = group.iter().fold(0.0f32, |a, v| a.max(v.abs()));
                let scale = if max == 0.0 { 1.0 } else { max / 7.0 };
                scales.push(scale);
                for (off, &v) in group.iter().enumerate() {
                    let c = start + off;
                    let q = (v / scale).round().clamp(-7.0, 7.0);
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let code = (q as i32 + 8) as u8;
                    let byte = &mut data[r * row_bytes + c / 2];
                    if c.is_multiple_of(2) {
                        *byte |= code;
                    } else {
                        *byte |= code << 4;
                    }
                }
            }
        }
        Quant4Matrix {
            rows: m.rows,
            cols: m.cols,
            data,
            scales,
        }
    }

    /// Unbiased code for element `(r, c)`.
    #[inline]
    fn code(&self, r: usize, c: usize) -> f32 {
        let row_bytes = self.cols.div_ceil(2);
        let byte = self.data[r * row_bytes + c / 2];
        let nibble = if c.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        };
        f32::from(i16::from(nibble) - 8)
    }

    /// Dequantize back to f32.
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let ngroups = groups_of(self.cols);
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let scale = self.scales[r * ngroups + c / GROUP];
                out.set(r, c, self.code(r, c) * scale);
            }
        }
        out
    }

    /// Fused per-row dot product: unpack nibbles through a staged
    /// lane-block, accumulate in one [`LANES`]-wide f32 block spanning
    /// the whole row, with the group scale folded into each product.
    /// Shared by GEMV and GEMM.
    #[inline(always)]
    fn dot_row(&self, r: usize, x: &[f32]) -> f32 {
        let ngroups = groups_of(self.cols);
        let row_bytes = self.cols.div_ceil(2);
        let base = r * row_bytes;
        let mut lanes = [0.0f32; LANES];
        let blocks = self.cols / LANES;
        for blk in 0..blocks {
            let start = blk * LANES;
            let s = self.scales[r * ngroups + start / GROUP];
            // LANES is even, so full blocks begin and end on byte
            // boundaries: LANES/2 packed bytes per block. Fixed-size
            // views drop per-element bounds checks from the hot loop.
            let bytes: &[u8; LANES / 2] = self.data[base + start / 2..base + start / 2 + LANES / 2]
                .try_into()
                .expect("lane block");
            let mut vals = [0.0f32; LANES];
            for j in 0..LANES / 2 {
                let byte = bytes[j];
                vals[2 * j] = f32::from(i16::from(byte & 0x0F) - 8);
                vals[2 * j + 1] = f32::from(i16::from(byte >> 4) - 8);
            }
            let xs: &[f32; LANES] = x[start..start + LANES].try_into().expect("lane block");
            for l in 0..LANES {
                lanes[l] = xs[l].mul_add(vals[l] * s, lanes[l]);
            }
        }
        // Ragged tail (always within one group; may also end mid-byte):
        // stage scalar unpacks, then fold in with constant lane indices.
        let start = blocks * LANES;
        if start < self.cols {
            let s = self.scales[r * ngroups + start / GROUP];
            let mut tail = [0.0f32; LANES];
            for c in start..self.cols {
                let byte = self.data[base + c / 2];
                let nibble = if c.is_multiple_of(2) {
                    byte & 0x0F
                } else {
                    byte >> 4
                };
                tail[c - start] = x[c] * (f32::from(i16::from(nibble) - 8) * s);
            }
            merge_tail(&mut lanes, &tail, self.cols - start);
        }
        reduce_lanes(&lanes)
    }

    /// `out = x · w^T` with fused nibble unpacking and f32 accumulation.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn gemv(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "q4gemv input dim");
        assert_eq!(out.len(), self.rows, "q4gemv output dim");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.dot_row(r, x);
        }
    }

    /// Batched fused GEMM, weight rows streamed once across the batch.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn gemm(&self, xs: &Matrix, out: &mut Matrix) {
        assert_eq!(xs.cols, self.cols, "q4gemm input dim");
        assert_eq!(out.rows, xs.rows, "q4gemm batch dim");
        assert_eq!(out.cols, self.rows, "q4gemm output dim");
        for r in 0..self.rows {
            for b in 0..xs.rows {
                let v = self.dot_row(r, xs.row(b));
                out.row_mut(b)[r] = v;
            }
        }
    }

    /// Storage bytes (packed data + scales): `rows * ceil(cols/2)` data
    /// bytes — exact for odd column counts — plus 4 per group scale.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, seed: u32) -> Matrix {
        // Small deterministic pseudo-random matrix.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    /// Max |group| per (row, group) of a matrix, for bound checks.
    fn group_max(m: &Matrix, r: usize, g: usize) -> f32 {
        let start = g * GROUP;
        let end = (start + GROUP).min(m.cols);
        m.row(r)[start..end]
            .iter()
            .fold(0.0f32, |a, v| a.max(v.abs()))
    }

    #[test]
    fn quantization_error_is_small() {
        let m = sample(16, 64, 7);
        let q = QuantMatrix::quantize(&m);
        let d = q.dequantize();
        for r in 0..m.rows {
            for c in 0..m.cols {
                let bound = group_max(&m, r, c / GROUP) / 254.0 + 1e-6;
                let err = (m.get(r, c) - d.get(r, c)).abs();
                assert!(err <= bound, "err {err} at {r},{c}");
            }
        }
    }

    #[test]
    fn int4_roundtrip_error_within_group_bound() {
        let m = sample(8, 96, 21);
        let q = Quant4Matrix::quantize(&m);
        let d = q.dequantize();
        for r in 0..m.rows {
            for c in 0..m.cols {
                let bound = group_max(&m, r, c / GROUP) / 14.0 + 1e-6;
                let err = (m.get(r, c) - d.get(r, c)).abs();
                assert!(err <= bound, "err {err} at {r},{c}");
            }
        }
    }

    #[test]
    fn group_scales_contain_outlier_damage() {
        // One huge outlier in the first group must not degrade groups
        // that don't contain it (the whole point of group-wise scales).
        let mut m = sample(1, 2 * GROUP, 5);
        m.set(0, 3, 1000.0);
        let q = QuantMatrix::quantize(&m);
        let d = q.dequantize();
        for c in GROUP..2 * GROUP {
            let bound = group_max(&m, 0, 1) / 254.0 + 1e-6;
            let err = (m.get(0, c) - d.get(0, c)).abs();
            assert!(err <= bound, "outlier leaked into clean group at col {c}");
        }
    }

    #[test]
    fn adversarial_matrices_quantize_within_bounds() {
        let zero = Matrix::zeros(4, 70);
        assert_eq!(QuantMatrix::quantize(&zero).dequantize(), zero);
        assert_eq!(Quant4Matrix::quantize(&zero).dequantize(), zero);

        let alt = Matrix::from_vec(
            2,
            65,
            (0..130)
                .map(|i| if i % 2 == 0 { 0.25 } else { -0.25 })
                .collect(),
        );
        let q8 = QuantMatrix::quantize(&alt).dequantize();
        let q4 = Quant4Matrix::quantize(&alt).dequantize();
        for r in 0..2 {
            for c in 0..65 {
                assert!((q8.get(r, c) - alt.get(r, c)).abs() <= 0.25 / 254.0 + 1e-6);
                assert!((q4.get(r, c) - alt.get(r, c)).abs() <= 0.25 / 14.0 + 1e-6);
            }
        }
    }

    #[test]
    fn qgemv_close_to_f32_gemv() {
        let m = sample(8, 32, 11);
        let q = QuantMatrix::quantize(&m);
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut exact = vec![0.0; 8];
        crate::kernels::gemv(&x, &m, &mut exact);
        let mut approx = vec![0.0; 8];
        q.gemv(&x, &mut approx);
        for (e, a) in exact.iter().zip(&approx) {
            let scale = e.abs().max(1.0);
            assert!((e - a).abs() / scale < 0.02, "exact {e} approx {a}");
        }
    }

    #[test]
    fn fused_gemv_matches_dequantize_then_gemv() {
        // Fused kernels must compute the same function as dequantizing
        // and running the f32 kernel (up to f32 rounding in the scale
        // multiply, which reassociates one multiply per group).
        let m = sample(6, 97, 13); // odd cols: ragged group + half byte
        let x: Vec<f32> = (0..97).map(|i| (i as f32 * 0.17).sin()).collect();
        for (fused, deq) in [
            {
                let q = QuantMatrix::quantize(&m);
                let mut f = vec![0.0; 6];
                q.gemv(&x, &mut f);
                let mut d = vec![0.0; 6];
                crate::kernels::gemv(&x, &q.dequantize(), &mut d);
                (f, d)
            },
            {
                let q = Quant4Matrix::quantize(&m);
                let mut f = vec![0.0; 6];
                q.gemv(&x, &mut f);
                let mut d = vec![0.0; 6];
                crate::kernels::gemv(&x, &q.dequantize(), &mut d);
                (f, d)
            },
        ] {
            for (f, d) in fused.iter().zip(&deq) {
                let scale = d.abs().max(1.0);
                assert!((f - d).abs() / scale < 1e-4, "fused {f} unfused {d}");
            }
        }
    }

    #[test]
    fn quantized_gemm_bit_identical_to_gemv() {
        let m = sample(5, 33, 17);
        let xs = sample(3, 33, 19);
        let q8 = QuantMatrix::quantize(&m);
        let q4 = Quant4Matrix::quantize(&m);
        let mut out8 = Matrix::zeros(3, 5);
        let mut out4 = Matrix::zeros(3, 5);
        q8.gemm(&xs, &mut out8);
        q4.gemm(&xs, &mut out4);
        for b in 0..3 {
            let mut s8 = vec![0.0; 5];
            let mut s4 = vec![0.0; 5];
            q8.gemv(xs.row(b), &mut s8);
            q4.gemv(xs.row(b), &mut s4);
            assert_eq!(out8.row(b), &s8[..]);
            assert_eq!(out4.row(b), &s4[..]);
        }
    }

    #[test]
    fn zero_matrix_quantizes_safely() {
        let m = Matrix::zeros(4, 4);
        let q = QuantMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn storage_is_quarter_of_f32() {
        let m = sample(64, 64, 3);
        let q = QuantMatrix::quantize(&m);
        let f32_bytes = 64 * 64 * 4;
        assert!(q.storage_bytes() < f32_bytes / 3);
    }

    #[test]
    fn storage_bytes_exact_for_odd_dims() {
        // 3 rows x 65 cols: int8 = 195 data + 3*2 group scales * 4;
        // int4 = 3*33 packed bytes (remainder half-byte counted) + same
        // scale count.
        let m = sample(3, 65, 9);
        let q8 = QuantMatrix::quantize(&m);
        assert_eq!(q8.storage_bytes(), 3 * 65 + 3 * 2 * 4);
        let q4 = Quant4Matrix::quantize(&m);
        assert_eq!(q4.storage_bytes(), 3 * 33 + 3 * 2 * 4);
        assert!(q4.storage_bytes() < q8.storage_bytes());
    }
}
