//! Per-row int8 weight quantization with f32 accumulation.
//!
//! The paper's int8 deployments quantize model weights post-training;
//! activations and accumulation stay in higher precision. This module
//! implements that scheme exactly: each weight row gets a scale
//! `max(|row|)/127`, elements are rounded to `i8`, and the GEMV
//! dequantizes on the fly.

use crate::tensor::Matrix;

/// An int8-quantized matrix with one f32 scale per row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// Quantize an f32 matrix row-wise.
    #[must_use]
    pub fn quantize(m: &Matrix) -> Self {
        let mut data = Vec::with_capacity(m.rows * m.cols);
        let mut scales = Vec::with_capacity(m.rows);
        for r in 0..m.rows {
            let row = m.row(r);
            let max = row.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
            scales.push(scale);
            for &v in row {
                let q = (v / scale).round().clamp(-127.0, 127.0);
                #[allow(clippy::cast_possible_truncation)]
                data.push(q as i8);
            }
        }
        QuantMatrix {
            rows: m.rows,
            cols: m.cols,
            data,
            scales,
        }
    }

    /// Dequantize back to f32 (for error measurement).
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let scale = self.scales[r];
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = f32::from(self.data[r * self.cols + c]) * scale;
            }
        }
        out
    }

    /// `out = x · w^T` with on-the-fly dequantization and f32 accumulation.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn gemv(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "qgemv input dim");
        assert_eq!(out.len(), self.rows, "qgemv output dim");
        for (r, o) in out.iter_mut().enumerate() {
            let base = r * self.cols;
            let mut acc = 0.0f32;
            for (c, &xv) in x.iter().enumerate() {
                acc += xv * f32::from(self.data[base + c]);
            }
            *o = acc * self.scales[r];
        }
    }

    /// Storage bytes (data + scales) — roughly a quarter of f32.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, seed: u32) -> Matrix {
        // Small deterministic pseudo-random matrix.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn quantization_error_is_small() {
        let m = sample(16, 64, 7);
        let q = QuantMatrix::quantize(&m);
        let d = q.dequantize();
        for r in 0..m.rows {
            for c in 0..m.cols {
                let err = (m.get(r, c) - d.get(r, c)).abs();
                assert!(err <= 0.5 / 127.0 + 1e-6, "err {err} at {r},{c}");
            }
        }
    }

    #[test]
    fn qgemv_close_to_f32_gemv() {
        let m = sample(8, 32, 11);
        let q = QuantMatrix::quantize(&m);
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut exact = vec![0.0; 8];
        crate::kernels::gemv(&x, &m, &mut exact);
        let mut approx = vec![0.0; 8];
        q.gemv(&x, &mut approx);
        for (e, a) in exact.iter().zip(&approx) {
            let scale = e.abs().max(1.0);
            assert!((e - a).abs() / scale < 0.02, "exact {e} approx {a}");
        }
    }

    #[test]
    fn zero_matrix_quantizes_safely() {
        let m = Matrix::zeros(4, 4);
        let q = QuantMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn storage_is_quarter_of_f32() {
        let m = sample(64, 64, 3);
        let q = QuantMatrix::quantize(&m);
        let f32_bytes = 64 * 64 * 4;
        assert!(q.storage_bytes() < f32_bytes / 3);
    }
}
