//! Microbenchmark of the raw dot kernels (`cargo run --release -p
//! cllm-infer --example ktime`): prints effective MAC/s per kernel at
//! decode-relevant shapes, to localize time between the dot kernels
//! and the rest of the forward pass.

use cllm_infer::quant::{Quant4Matrix, QuantMatrix};
use cllm_infer::tensor::Matrix;
use std::time::Instant;

fn mat(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

fn main() {
    for &(rows, cols) in &[(512usize, 512usize), (1408, 512), (512, 1408), (2048, 512)] {
        let w = mat(rows, cols, 1);
        let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut out = vec![0.0f32; rows];
        let reps = 2_000_000_000 / (rows * cols).max(1);

        let t0 = Instant::now();
        for _ in 0..reps {
            cllm_infer::kernels::gemv_tiled(&x, &w, &mut out);
            std::hint::black_box(&out);
        }
        let tiled = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        for _ in 0..reps {
            cllm_infer::kernels::gemv(&x, &w, &mut out);
            std::hint::black_box(&out);
        }
        let naive = t0.elapsed().as_secs_f64();

        let q8 = QuantMatrix::quantize(&w);
        let t0 = Instant::now();
        for _ in 0..reps {
            q8.gemv(&x, &mut out);
            std::hint::black_box(&out);
        }
        let int8 = t0.elapsed().as_secs_f64();

        let q4 = Quant4Matrix::quantize(&w);
        let t0 = Instant::now();
        for _ in 0..reps {
            q4.gemv(&x, &mut out);
            std::hint::black_box(&out);
        }
        let int4 = t0.elapsed().as_secs_f64();

        let macs = (reps * rows * cols) as f64;
        let ghz = 2.1e9;
        println!(
            "{rows}x{cols}: tiled {:.2} naive {:.2} int8 {:.2} int4 {:.2} MAC/cycle",
            macs / tiled / ghz,
            macs / naive / ghz,
            macs / int8 / ghz,
            macs / int4 / ghz,
        );
    }

    // Batched: gemm over 32 inputs, weight rows reused across the batch.
    let w = mat(1408, 512, 2);
    let xs = mat(32, 512, 3);
    let mut out = Matrix::zeros(32, 1408);
    let reps = 40;
    let t0 = Instant::now();
    for _ in 0..reps {
        cllm_infer::kernels::gemm(&xs, &w, &mut out);
        std::hint::black_box(&out);
    }
    let gemm = t0.elapsed().as_secs_f64();
    let macs = (reps * 32 * 1408 * 512) as f64;
    println!("gemm 32x[1408x512]: {:.2} MAC/cycle", macs / gemm / 2.1e9);
}
