//! BEIR-style evaluation of RAG pipelines: quality and work accounting.

use crate::RagPipeline;
use cllm_retrieval::beir::BeirDataset;
use cllm_retrieval::metrics::{ndcg_at_k, recall_at_k, reciprocal_rank};

/// Quality and work summary of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Queries evaluated.
    pub queries: usize,
    /// Mean nDCG@10.
    pub ndcg10: f64,
    /// Mean recall@10.
    pub recall10: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean work units per query (proportional to retrieval latency).
    pub work_units_per_query: f64,
}

/// Evaluate a pipeline over a dataset's queries and qrels.
///
/// # Panics
///
/// Panics if the dataset has no queries.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn evaluate(pipeline: &RagPipeline, dataset: &BeirDataset) -> EvalReport {
    assert!(!dataset.queries.is_empty(), "dataset has no queries");
    let mut ndcg = 0.0;
    let mut recall = 0.0;
    let mut mrr = 0.0;
    for (qid, qtext) in &dataset.queries {
        let hits = pipeline.retrieve(qtext);
        let qrels = &dataset.qrels[qid];
        ndcg += ndcg_at_k(&hits, qrels, 10);
        recall += recall_at_k(&hits, qrels, 10);
        mrr += reciprocal_rank(&hits, qrels);
    }
    let n = dataset.queries.len() as f64;
    EvalReport {
        queries: dataset.queries.len(),
        ndcg10: ndcg / n,
        recall10: recall / n,
        mrr: mrr / n,
        work_units_per_query: pipeline.query_cost_units(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RagConfig;
    use cllm_retrieval::beir::{generate, BeirSpec};
    use cllm_retrieval::engine::SearchMode;

    fn dataset() -> BeirDataset {
        generate(&BeirSpec {
            topics: 6,
            docs_per_topic: 15,
            queries_per_topic: 3,
            doc_len: 30,
            seed: 31,
        })
    }

    fn run(method: SearchMode) -> EvalReport {
        let data = dataset();
        let mut p = RagPipeline::new(RagConfig {
            method,
            top_k: 10,
            embedding_dim: 128,
        });
        p.ingest(data.docs.iter().map(|(id, t)| (*id, t.as_str())));
        evaluate(&p, &data)
    }

    #[test]
    fn bm25_quality_is_high_on_topical_corpus() {
        let r = run(SearchMode::Bm25);
        assert!(r.ndcg10 > 0.6, "nDCG {}", r.ndcg10);
        assert!(r.mrr > 0.8, "MRR {}", r.mrr);
    }

    #[test]
    fn all_methods_beat_random() {
        for mode in [
            SearchMode::Bm25,
            SearchMode::RerankedBm25 { candidates: 25 },
            SearchMode::Sbert,
        ] {
            let r = run(mode);
            // Random top-10 of 90 docs with 15 relevant ≈ recall 0.11.
            assert!(r.recall10 > 0.3, "{}: recall {}", mode.label(), r.recall10);
        }
    }

    #[test]
    fn work_units_ordering() {
        let bm25 = run(SearchMode::Bm25).work_units_per_query;
        let rr = run(SearchMode::RerankedBm25 { candidates: 25 }).work_units_per_query;
        let sbert = run(SearchMode::Sbert).work_units_per_query;
        assert!(bm25 < rr);
        assert!(bm25 < sbert);
    }

    #[test]
    fn report_counts_queries() {
        assert_eq!(run(SearchMode::Bm25).queries, 18);
    }
}
