//! Retrieval-augmented-generation pipelines under TEE performance models.
//!
//! Section VI evaluates three RAG retrieval methods (BM25, reranked BM25,
//! SBERT) over BEIR with an Elasticsearch store, running the whole
//! pipeline inside TDX, and finds 6-7% overhead — similar to plain LLM
//! inference (Insight 12).
//!
//! This crate provides:
//!
//! * [`RagPipeline`] — ingest a corpus, retrieve per query, and build the
//!   context string that would be prepended to an LLM prompt, using the
//!   real `cllm-retrieval` engine.
//! * [`eval`] — BEIR-style quality evaluation (nDCG@10, recall, MRR) plus
//!   per-query work accounting.
//! * [`tee`] — the TEE cost model for retrieval workloads: RAG is a blend
//!   of memory-streaming (index scans) and compute (scoring, hashing), so
//!   its TDX overhead lands below pure decode but in the same ballpark.
//!
//! # Example
//!
//! ```
//! use cllm_rag::{RagConfig, RagPipeline};
//! use cllm_retrieval::engine::SearchMode;
//!
//! let mut rag = RagPipeline::new(RagConfig::default());
//! rag.ingest([(0, "enclave attestation report"), (1, "garden soil tips")]);
//! let ctx = rag.answer_context("attestation enclave");
//! assert!(ctx.contains("attestation"));
//! # let _ = SearchMode::Bm25;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod tee;

use cllm_retrieval::engine::{Engine, SearchMode};
use cllm_retrieval::index::Hit;

/// RAG pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RagConfig {
    /// Retrieval method (the Figure 14 x-axis).
    pub method: SearchMode,
    /// Documents retrieved per query.
    pub top_k: usize,
    /// Embedding dimension of the dense index.
    pub embedding_dim: usize,
}

impl Default for RagConfig {
    fn default() -> Self {
        RagConfig {
            method: SearchMode::Bm25,
            top_k: 5,
            embedding_dim: 128,
        }
    }
}

/// A retrieval-augmented-generation pipeline (retrieval half; generation
/// is composed in `cllm-core`).
#[derive(Debug)]
pub struct RagPipeline {
    engine: Engine,
    config: RagConfig,
}

impl RagPipeline {
    /// Create an empty pipeline.
    #[must_use]
    pub fn new(config: RagConfig) -> Self {
        RagPipeline {
            engine: Engine::new(config.embedding_dim),
            config,
        }
    }

    /// Pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &RagConfig {
        &self.config
    }

    /// Ingest documents into the store.
    pub fn ingest<'a>(&mut self, docs: impl IntoIterator<Item = (u64, &'a str)>) {
        self.engine.bulk(docs);
    }

    /// Number of documents in the store.
    #[must_use]
    pub fn corpus_size(&self) -> usize {
        self.engine.len()
    }

    /// Retrieve the top-k documents for a query.
    #[must_use]
    pub fn retrieve(&self, query: &str) -> Vec<Hit> {
        self.engine
            .search(query, self.config.method, self.config.top_k)
    }

    /// Retrieve and concatenate document texts into the context block an
    /// LLM prompt would receive.
    #[must_use]
    pub fn answer_context(&self, query: &str) -> String {
        let hits = self.retrieve(query);
        let mut ctx = String::new();
        for (i, h) in hits.iter().enumerate() {
            if let Some(text) = self.engine.get(h.doc) {
                ctx.push_str(&format!("[{i}] {text}\n"));
            }
        }
        ctx
    }

    /// Work units for one query in the configured mode (drives the
    /// Figure 14 latency model).
    #[must_use]
    pub fn query_cost_units(&self) -> f64 {
        self.engine.query_cost_units(self.config.method)
    }

    /// Borrow the underlying engine (for evaluation).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline(method: SearchMode) -> RagPipeline {
        let mut p = RagPipeline::new(RagConfig {
            method,
            top_k: 3,
            embedding_dim: 128,
        });
        p.ingest([
            (0u64, "tdx trust domains encrypt guest memory"),
            (1, "bm25 ranks documents by keyword relevance"),
            (2, "tomato plants need six hours of sunlight"),
            (3, "guest memory encryption protects llm weights"),
        ]);
        p
    }

    #[test]
    fn context_contains_relevant_docs() {
        let p = pipeline(SearchMode::Bm25);
        let ctx = p.answer_context("guest memory encryption");
        assert!(ctx.contains("guest memory"));
        assert!(!ctx.contains("tomato"));
    }

    #[test]
    fn all_methods_work_end_to_end() {
        for mode in [
            SearchMode::Bm25,
            SearchMode::RerankedBm25 { candidates: 4 },
            SearchMode::Sbert,
        ] {
            let p = pipeline(mode);
            let hits = p.retrieve("memory encryption");
            assert!(!hits.is_empty(), "{}", mode.label());
            assert!(hits.len() <= 3);
        }
    }

    #[test]
    fn top_k_respected() {
        let p = pipeline(SearchMode::Bm25);
        assert!(p.retrieve("memory").len() <= p.config().top_k);
    }

    #[test]
    fn corpus_size_tracks_ingest() {
        let p = pipeline(SearchMode::Bm25);
        assert_eq!(p.corpus_size(), 4);
    }
}
