//! TEE cost model for retrieval workloads (Figure 14).
//!
//! A RAG query is a different workload from LLM decode: index scans and
//! postings traversal are memory-streaming, while scoring, hashing and
//! reranking are compute. The paper nonetheless measures a similar
//! overhead level — 6-7% for TDX (Insight 12) — because the same
//! mechanisms (memory encryption, virtualization tax, hugepage handling)
//! apply to the memory-bound share.

use cllm_perf::{CpuTarget, MemSystem};
use cllm_tee::CpuTeeConfig;

/// Fraction of RAG query time that is memory-bound (index scans); the
/// rest is compute (scoring, hashing, reranking).
pub const RAG_MEMORY_BOUND_FRACTION: f64 = 0.55;

/// Multiplicative slowdown of a RAG workload on `tee` relative to bare
/// metal on the same `target`.
///
/// The memory-bound share is priced by the same [`MemSystem`] the LLM
/// simulator uses (at an effective batch of a few concurrent queries);
/// the compute share pays only the virtualization tax.
#[must_use]
pub fn rag_slowdown_factor(target: &CpuTarget, tee: &CpuTeeConfig) -> f64 {
    // A representative per-query scan footprint: a few hundred MiB of
    // index pages — big enough to stream, small enough to stay in TLB
    // reach on huge pages.
    let footprint = 0.4 * cllm_hw::GIB;
    let bytes = 0.2 * cllm_hw::GIB;
    let bare = MemSystem::build(target, &CpuTeeConfig::bare_metal(), footprint);
    let teed = MemSystem::build(target, tee, footprint);
    let mem_ratio = teed.memory_time(bytes, 4) / bare.memory_time(bytes, 4);
    let cpu_tax = 1.0 + tee.virt.map_or(0.0, |v| v.cpu_tax);
    let blended =
        RAG_MEMORY_BOUND_FRACTION * mem_ratio + (1.0 - RAG_MEMORY_BOUND_FRACTION) * cpu_tax;
    // Per-query fixed costs (syscalls into the network stack, TD
    // transitions) are small relative to multi-millisecond queries.
    blended
}

/// Mean evaluation time per query under a TEE, given the bare-metal
/// measured/simulated time.
#[must_use]
pub fn eval_time_under_tee(bare_time_s: f64, target: &CpuTarget, tee: &CpuTeeConfig) -> f64 {
    bare_time_s * rag_slowdown_factor(target, tee)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdx_rag_overhead_in_paper_band() {
        // Figure 14: "6-7% degradation for TDX".
        let target = CpuTarget::emr2_single_socket();
        let f = rag_slowdown_factor(&target, &CpuTeeConfig::tdx());
        let pct = (f - 1.0) * 100.0;
        assert!((4.0..9.0).contains(&pct), "TDX RAG overhead {pct}%");
    }

    #[test]
    fn bare_metal_factor_is_one() {
        let target = CpuTarget::emr2_single_socket();
        let f = rag_slowdown_factor(&target, &CpuTeeConfig::bare_metal());
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_vm_below_tdx() {
        let target = CpuTarget::emr2_single_socket();
        let vm = rag_slowdown_factor(&target, &CpuTeeConfig::vm());
        let tdx = rag_slowdown_factor(&target, &CpuTeeConfig::tdx());
        assert!(vm < tdx);
        assert!(vm > 1.0);
    }

    #[test]
    fn eval_time_scales_linearly() {
        let target = CpuTarget::emr2_single_socket();
        let t1 = eval_time_under_tee(1.0, &target, &CpuTeeConfig::tdx());
        let t2 = eval_time_under_tee(2.0, &target, &CpuTeeConfig::tdx());
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
