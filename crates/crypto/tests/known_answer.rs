//! Known-answer tests against published vectors: FIPS 180-4 (SHA-256),
//! RFC 4231 (HMAC-SHA-256) and NIST SP 800-38A (AES-128 ECB and CTR).
//! The primitives already have unit tests; these pin the exact bytes
//! the standards publish, so a silent regression in any round function
//! fails against an external reference rather than a self-computed one.

use cllm_crypto::aes::Aes128;
use cllm_crypto::hmac::hmac_sha256;
use cllm_crypto::modes::Ctr;
use cllm_crypto::sha256::{from_hex, sha256, to_hex};

fn hex(s: &str) -> Vec<u8> {
    from_hex(s).expect("valid hex in test vector")
}

fn key16(s: &str) -> [u8; 16] {
    hex(s).try_into().expect("16-byte key")
}

// --- FIPS 180-4 / NIST CAVP SHA-256 vectors ---

#[test]
fn sha256_fips_empty_message() {
    assert_eq!(
        to_hex(&sha256(b"")),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
}

#[test]
fn sha256_fips_abc() {
    assert_eq!(
        to_hex(&sha256(b"abc")),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}

#[test]
fn sha256_fips_two_block_message() {
    // 56 bytes: crosses the single-block padding boundary.
    let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    assert_eq!(
        to_hex(&sha256(msg)),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}

#[test]
fn sha256_million_a() {
    // FIPS 180-4 appendix: 1,000,000 repetitions of 'a'; exercises many
    // full blocks through the same compression function.
    let msg = vec![b'a'; 1_000_000];
    assert_eq!(
        to_hex(&sha256(&msg)),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

// --- RFC 4231 HMAC-SHA-256 vectors ---

#[test]
fn hmac_sha256_rfc4231_case_1() {
    let key = [0x0b; 20];
    let mac = hmac_sha256(&key, b"Hi There");
    assert_eq!(
        to_hex(&mac),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    );
}

#[test]
fn hmac_sha256_rfc4231_case_2() {
    let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
    assert_eq!(
        to_hex(&mac),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    );
}

#[test]
fn hmac_sha256_rfc4231_case_3() {
    let key = [0xaa; 20];
    let msg = [0xdd; 50];
    let mac = hmac_sha256(&key, &msg);
    assert_eq!(
        to_hex(&mac),
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    );
}

#[test]
fn hmac_sha256_rfc4231_case_6_key_longer_than_block() {
    // 131-byte key: forces the key-hashing path of HMAC.
    let key = [0xaa; 131];
    let mac = hmac_sha256(
        &key,
        b"Test Using Larger Than Block-Size Key - Hash Key First",
    );
    assert_eq!(
        to_hex(&mac),
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    );
}

// --- NIST SP 800-38A AES-128 vectors ---

/// The four-block SP 800-38A plaintext shared by every mode's vector.
fn nist_plaintext() -> Vec<u8> {
    hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710")
}

#[test]
fn aes128_ecb_sp800_38a_f_1_1() {
    let cipher = Aes128::new(&key16("2b7e151628aed2a6abf7158809cf4f3c"));
    let expected = [
        "3ad77bb40d7a3660a89ecaf32466ef97",
        "f5d3d58503b9699de785895a96fdbaaf",
        "43b1cd7f598ece23881b00e3ed030688",
        "7b0c785e27e8ad3f8223207104725dd4",
    ];
    for (block, want) in nist_plaintext().chunks_exact(16).zip(expected) {
        let block: [u8; 16] = block.try_into().expect("16-byte block");
        assert_eq!(to_hex(&cipher.encrypt(&block)), want);
    }
}

#[test]
fn aes128_ctr_sp800_38a_f_5_1() {
    // SP 800-38A uses the 16-byte counter block f0f1...feff; our CTR
    // splits that as a 12-byte IV prefix plus a 32-bit big-endian
    // counter, so the vector maps to iv = f0..fb, counter = 0xfcfdfeff.
    let ctr = Ctr::new(&key16("2b7e151628aed2a6abf7158809cf4f3c"));
    let iv: [u8; 12] = hex("f0f1f2f3f4f5f6f7f8f9fafb")
        .try_into()
        .expect("12-byte iv");
    let mut data = nist_plaintext();
    ctr.apply(&iv, 0xfcfd_feff, &mut data);
    assert_eq!(
        to_hex(&data),
        "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff5ae4df3edbd5d35e5b4f09020db03eab1e031dda2fbe03d1792170a0f3009cee"
    );
}

#[test]
fn aes128_ctr_is_an_involution_on_the_nist_vector() {
    let ctr = Ctr::new(&key16("2b7e151628aed2a6abf7158809cf4f3c"));
    let iv: [u8; 12] = hex("f0f1f2f3f4f5f6f7f8f9fafb")
        .try_into()
        .expect("12-byte iv");
    let mut data = nist_plaintext();
    ctr.apply(&iv, 0xfcfd_feff, &mut data);
    ctr.apply(&iv, 0xfcfd_feff, &mut data);
    assert_eq!(data, nist_plaintext());
}
