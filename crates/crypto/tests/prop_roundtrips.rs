//! Property-based tests for the crypto substrate.

use cllm_crypto::modes::{Ctr, Gcm};
use cllm_crypto::sha256::{from_hex, sha256, to_hex, Sha256};
use cllm_crypto::{aead_open, aead_seal, hmac::hmac_sha256, hmac::verify_hmac, kdf};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gcm_roundtrip(key in any::<[u8; 16]>(), iv in any::<[u8; 12]>(),
                     pt in proptest::collection::vec(any::<u8>(), 0..512),
                     aad in proptest::collection::vec(any::<u8>(), 0..64)) {
        let gcm = Gcm::new(&key);
        let (ct, tag) = gcm.encrypt(&iv, &pt, &aad);
        prop_assert_eq!(ct.len(), pt.len());
        let back = gcm.decrypt(&iv, &ct, &aad, &tag).expect("tag must verify");
        prop_assert_eq!(back, pt);
    }

    #[test]
    fn gcm_detects_any_single_bitflip(key in any::<[u8; 16]>(), iv in any::<[u8; 12]>(),
                                      pt in proptest::collection::vec(any::<u8>(), 1..128),
                                      byte_idx in 0usize..128, bit in 0u8..8) {
        let gcm = Gcm::new(&key);
        let (mut ct, tag) = gcm.encrypt(&iv, &pt, b"");
        let idx = byte_idx % ct.len();
        ct[idx] ^= 1 << bit;
        prop_assert!(gcm.decrypt(&iv, &ct, b"", &tag).is_none());
    }

    #[test]
    fn ctr_is_involutive(key in any::<[u8; 16]>(), iv in any::<[u8; 12]>(),
                         counter in any::<u32>(),
                         data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let ctr = Ctr::new(&key);
        let mut buf = data.clone();
        ctr.apply(&iv, counter, &mut buf);
        ctr.apply(&iv, counter, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn aead_seal_roundtrip(key in any::<[u8; 16]>(),
                           nonce in proptest::collection::vec(any::<u8>(), 0..32),
                           pt in proptest::collection::vec(any::<u8>(), 0..256)) {
        let sealed = aead_seal(&key, &nonce, &pt, b"aad");
        prop_assert_eq!(sealed.len(), pt.len() + 16);
        prop_assert_eq!(aead_open(&key, &nonce, &sealed, b"aad").unwrap(), pt);
    }

    #[test]
    fn sha256_incremental_any_split(data in proptest::collection::vec(any::<u8>(), 0..300),
                                    split_frac in 0.0f64..1.0) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn hmac_verify_consistent(key in proptest::collection::vec(any::<u8>(), 0..80),
                              msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac(&key, &msg, &tag));
    }

    #[test]
    fn hkdf_prefix_consistency(salt in proptest::collection::vec(any::<u8>(), 0..32),
                               ikm in proptest::collection::vec(any::<u8>(), 1..64),
                               short in 1usize..32, long in 32usize..128) {
        let a = kdf::hkdf(&salt, &ikm, b"info", short);
        let b = kdf::hkdf(&salt, &ikm, b"info", long);
        prop_assert_eq!(&a[..], &b[..short]);
    }
}
