//! HMAC-SHA256 (RFC 2104), validated against RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256};

/// Compute `HMAC-SHA256(key, message)`.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verify an HMAC tag in constant time.
#[must_use]
pub fn verify_hmac(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    crate::ct_eq(&hmac_sha256(key, message), tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        // key = 20 x 0xaa, data = 50 x 0xdd.
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        // Keys longer than the block size must hash down; just check the
        // call works and differs from the truncated-key result.
        let long_key = [0x42u8; 100];
        let short_key = &long_key[..64];
        assert_ne!(hmac_sha256(&long_key, b"m"), hmac_sha256(short_key, b"m"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac(b"k", b"m", &tag));
        let mut bad = tag;
        bad[31] ^= 1;
        assert!(!verify_hmac(b"k", b"m", &bad));
        assert!(!verify_hmac(b"k", b"m", &tag[..31]));
    }
}
