//! HKDF key derivation (RFC 5869) over HMAC-SHA256.
//!
//! Mirrors the sealing-key derivation of SGX (`EGETKEY`) / TDX: a hardware
//! root secret is combined with the enclave measurement and a usage label
//! so that only the same enclave on the same "hardware" can re-derive keys.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: derive a pseudorandom key from input key material.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expand `prk` into `len` output bytes bound to `info`.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (RFC 5869 limit).
#[must_use]
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF-Expand length limit exceeded");
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        t = block.to_vec();
        okm.extend_from_slice(&block);
        counter = counter.checked_add(1).expect("len limit enforced above");
    }
    okm.truncate(len);
    okm
}

/// One-shot HKDF: extract then expand.
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

/// Derive a 16-byte AES sealing key from a root secret, a measurement and
/// a usage label — the shape of SGX's `EGETKEY(SEAL_KEY, MRENCLAVE)`.
#[must_use]
pub fn derive_sealing_key(root_secret: &[u8], measurement: &[u8; 32], label: &str) -> [u8; 16] {
    let mut info = Vec::with_capacity(measurement.len() + label.len() + 5);
    info.extend_from_slice(b"seal:");
    info.extend_from_slice(measurement);
    info.extend_from_slice(label.as_bytes());
    let okm = hkdf(b"cllm-sealing-v1", root_secret, &info, 16);
    okm.try_into().expect("requested 16 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, to_hex};

    #[test]
    fn rfc5869_test_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = from_hex("000102030405060708090a0b0c").unwrap();
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn expand_is_prefix_consistent() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let short = hkdf_expand(&prk, b"info", 16);
        let long = hkdf_expand(&prk, b"info", 64);
        assert_eq!(short, long[..16]);
    }

    #[test]
    fn different_info_different_keys() {
        let prk = hkdf_extract(b"s", b"k");
        assert_ne!(hkdf_expand(&prk, b"a", 32), hkdf_expand(&prk, b"b", 32));
    }

    #[test]
    fn sealing_key_binds_to_measurement() {
        let m1 = [1u8; 32];
        let m2 = [2u8; 32];
        let k1 = derive_sealing_key(b"root", &m1, "weights");
        let k2 = derive_sealing_key(b"root", &m2, "weights");
        let k3 = derive_sealing_key(b"root", &m1, "kvcache");
        assert_ne!(k1, k2, "different enclaves must get different keys");
        assert_ne!(k1, k3, "different labels must get different keys");
        assert_eq!(k1, derive_sealing_key(b"root", &m1, "weights"));
    }

    #[test]
    #[should_panic(expected = "length limit")]
    fn expand_rejects_oversize() {
        let prk = [0u8; 32];
        let _ = hkdf_expand(&prk, b"", 255 * 32 + 1);
    }
}
