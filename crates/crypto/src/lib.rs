//! From-scratch cryptographic primitives for the TEE substrate.
//!
//! The paper's confidential pipelines rely on three cryptographic services
//! that we implement fully rather than stub:
//!
//! * **Hashing / measurement** — [`sha256`] implements FIPS 180-4 SHA-256,
//!   used for enclave measurements (`MRENCLAVE`-style) and file integrity
//!   in Gramine-like manifests.
//! * **Authentication** — [`hmac`] (RFC 2104) and [`kdf`] (RFC 5869 HKDF)
//!   derive sealing keys bound to a measurement, mirroring SGX's
//!   `EGETKEY` sealing-key derivation.
//! * **Confidentiality** — [`aes`] implements FIPS-197 AES-128, with
//!   [`modes`] providing CTR streaming (LUKS-like block encryption of the
//!   model weights at rest) and GCM authenticated encryption (Gramine
//!   protected files and attestation-channel payloads).
//!
//! All primitives are validated against published test vectors (FIPS-197,
//! NIST GCM, RFC 4231) plus property tests for round-trips and tampering
//! detection.
//!
//! # Security note
//!
//! These implementations favour clarity over side-channel hardening (no
//! constant-time table lookups); they are faithful functional stand-ins
//! for the hardware crypto engines of real TEEs, which is what the
//! reproduction requires — not production cryptography.
//!
//! # Example
//!
//! ```
//! use cllm_crypto::{aead_seal, aead_open, sha256::sha256};
//!
//! let key: [u8; 16] = sha256(b"sealing key material")[..16].try_into().unwrap();
//! let sealed = aead_seal(&key, b"nonce123", b"weights", b"aad");
//! let opened = aead_open(&key, b"nonce123", &sealed, b"aad").unwrap();
//! assert_eq!(opened, b"weights");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod dh;
pub mod drbg;
pub mod hmac;
pub mod kdf;
pub mod modes;
pub mod sha256;

use modes::Gcm;

/// Error produced when authenticated decryption fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("authentication tag mismatch: ciphertext or AAD was tampered with")
    }
}

impl std::error::Error for AuthError {}

/// Seal `plaintext` with AES-128-GCM, returning `ciphertext || 16-byte tag`.
///
/// `nonce` may be any length; it is hashed down to the 12-byte GCM IV. This
/// is the convenience entry point used by the sealed-storage layer.
#[must_use]
pub fn aead_seal(key: &[u8; 16], nonce: &[u8], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
    let iv = derive_iv(nonce);
    let gcm = Gcm::new(key);
    let (mut ct, tag) = gcm.encrypt(&iv, plaintext, aad);
    ct.extend_from_slice(&tag);
    ct
}

/// Open a blob produced by [`aead_seal`]. Returns [`AuthError`] if the tag
/// does not verify (wrong key, wrong nonce, or tampering).
pub fn aead_open(
    key: &[u8; 16],
    nonce: &[u8],
    sealed: &[u8],
    aad: &[u8],
) -> Result<Vec<u8>, AuthError> {
    if sealed.len() < 16 {
        return Err(AuthError);
    }
    let (ct, tag) = sealed.split_at(sealed.len() - 16);
    let iv = derive_iv(nonce);
    let gcm = Gcm::new(key);
    let tag: [u8; 16] = tag.try_into().expect("split guarantees 16 bytes");
    gcm.decrypt(&iv, ct, aad, &tag).ok_or(AuthError)
}

fn derive_iv(nonce: &[u8]) -> [u8; 12] {
    let h = sha256::sha256(nonce);
    h[..12].try_into().expect("sha256 output is 32 bytes")
}

/// Constant-time byte-slice equality (false on length mismatch).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let key = [7u8; 16];
        let sealed = aead_seal(&key, b"n", b"hello enclave", b"meta");
        assert_eq!(
            aead_open(&key, b"n", &sealed, b"meta").unwrap(),
            b"hello enclave"
        );
    }

    #[test]
    fn tampering_detected() {
        let key = [7u8; 16];
        let mut sealed = aead_seal(&key, b"n", b"hello enclave", b"meta");
        sealed[0] ^= 1;
        assert_eq!(aead_open(&key, b"n", &sealed, b"meta"), Err(AuthError));
    }

    #[test]
    fn wrong_aad_detected() {
        let key = [7u8; 16];
        let sealed = aead_seal(&key, b"n", b"hello", b"meta");
        assert_eq!(aead_open(&key, b"n", &sealed, b"other"), Err(AuthError));
    }

    #[test]
    fn wrong_key_detected() {
        let sealed = aead_seal(&[7u8; 16], b"n", b"hello", b"");
        assert_eq!(aead_open(&[8u8; 16], b"n", &sealed, b""), Err(AuthError));
    }

    #[test]
    fn truncated_blob_rejected() {
        let key = [1u8; 16];
        assert_eq!(aead_open(&key, b"n", &[0u8; 7], b""), Err(AuthError));
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
    }
}
