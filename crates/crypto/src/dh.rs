//! Diffie-Hellman key agreement over GF(2^127 - 1).
//!
//! The attested-session protocol needs an ephemeral key agreement so the
//! model owner and the enclave can derive a channel key that the
//! attestation quote can *bind* (preventing relay/MITM). We implement
//! textbook DH over the Mersenne prime `p = 2^127 - 1`.
//!
//! This group is large enough to exercise the real protocol logic and far
//! too small for actual security — like the rest of `cllm-crypto` it is a
//! faithful functional stand-in, not production cryptography (a real
//! deployment uses X25519/P-384 inside the quote's report data).

use crate::drbg::HashDrbg;

/// The Mersenne prime 2^127 - 1.
pub const P: u128 = (1u128 << 127) - 1;

/// Group generator (a small primitive-ish element; any generator of a
/// large subgroup suffices for the simulation).
pub const G: u128 = 43;

/// `(a + b) mod p` without overflow (inputs < p < 2^127).
fn addmod(a: u128, b: u128) -> u128 {
    let s = a + b; // < 2^128, no overflow since a,b < 2^127
    if s >= P {
        s - P
    } else {
        s
    }
}

/// `(a * b) mod p` by Russian-peasant multiplication (no 256-bit type).
#[must_use]
pub fn mulmod(mut a: u128, mut b: u128, _p: u128) -> u128 {
    a %= P;
    b %= P;
    let mut acc = 0u128;
    while b > 0 {
        if b & 1 == 1 {
            acc = addmod(acc, a);
        }
        a = addmod(a, a);
        b >>= 1;
    }
    acc
}

/// `g^e mod p` by square-and-multiply.
#[must_use]
pub fn modpow(mut base: u128, mut exp: u128, _p: u128) -> u128 {
    base %= P;
    let mut acc = 1u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, P);
        }
        base = mulmod(base, base, P);
        exp >>= 1;
    }
    acc
}

/// An ephemeral DH key pair.
#[derive(Clone)]
pub struct DhKeyPair {
    secret: u128,
    /// The public value `g^secret mod p`.
    pub public: u128,
}

impl std::fmt::Debug for DhKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DhKeyPair {{ public: {:#x}, .. }}", self.public)
    }
}

impl DhKeyPair {
    /// Generate a key pair from the given DRBG.
    #[must_use]
    pub fn generate(drbg: &mut HashDrbg) -> Self {
        let mut bytes = [0u8; 16];
        drbg.fill(&mut bytes);
        // Clamp into [2, p-2].
        let secret = (u128::from_be_bytes(bytes) % (P - 3)) + 2;
        DhKeyPair {
            secret,
            public: modpow(G, secret, P),
        }
    }

    /// Compute the shared secret with a peer's public value.
    ///
    /// Returns `None` for degenerate peer values (0, 1, p-1) — small
    /// subgroup / identity elements a MITM could force.
    #[must_use]
    pub fn shared_secret(&self, peer_public: u128) -> Option<[u8; 16]> {
        let peer = peer_public % P;
        if peer <= 1 || peer == P - 1 {
            return None;
        }
        let s = modpow(peer, self.secret, P);
        Some(
            (s % (1u128 << 127)).to_be_bytes()[0..16]
                .try_into()
                .expect("16 bytes"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulmod_matches_small_cases() {
        assert_eq!(mulmod(7, 9, P), 63);
        assert_eq!(mulmod(P - 1, 2, P), P - 2); // (-1)*2 = -2 mod p
        assert_eq!(mulmod(P - 1, P - 1, P), 1); // (-1)^2 = 1
    }

    #[test]
    fn modpow_basics() {
        assert_eq!(modpow(2, 10, P), 1024);
        assert_eq!(modpow(G, 0, P), 1);
        assert_eq!(modpow(G, 1, P), G);
        // Fermat: g^(p-1) = 1 mod p.
        assert_eq!(modpow(G, P - 1, P), 1);
    }

    #[test]
    fn dh_agreement() {
        let mut d1 = HashDrbg::new(b"alice");
        let mut d2 = HashDrbg::new(b"bob");
        let a = DhKeyPair::generate(&mut d1);
        let b = DhKeyPair::generate(&mut d2);
        let s1 = a.shared_secret(b.public).unwrap();
        let s2 = b.shared_secret(a.public).unwrap();
        assert_eq!(s1, s2, "both sides derive the same secret");
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn third_party_gets_different_secret() {
        let mut d = HashDrbg::new(b"seed");
        let a = DhKeyPair::generate(&mut d);
        let b = DhKeyPair::generate(&mut d);
        let eve = DhKeyPair::generate(&mut d);
        assert_ne!(
            a.shared_secret(b.public).unwrap(),
            eve.shared_secret(b.public).unwrap()
        );
    }

    #[test]
    fn degenerate_publics_rejected() {
        let mut d = HashDrbg::new(b"x");
        let a = DhKeyPair::generate(&mut d);
        assert!(a.shared_secret(0).is_none());
        assert!(a.shared_secret(1).is_none());
        assert!(a.shared_secret(P - 1).is_none());
        assert!(a.shared_secret(P).is_none()); // p ≡ 0
    }

    #[test]
    fn debug_hides_secret() {
        let mut d = HashDrbg::new(b"dbg");
        let kp = DhKeyPair::generate(&mut d);
        let s = format!("{kp:?}");
        assert!(s.contains("public"));
        assert!(!s.contains(&format!("{}", kp.secret)));
    }
}
