//! Block-cipher modes: CTR streaming and GCM authenticated encryption.

use crate::aes::Aes128;

/// AES-128-CTR keystream cipher.
///
/// Used by the LUKS-like full-disk layer (`cllm-tee::sealed::BlockDevice`):
/// each sector gets a distinct initial counter derived from its index, like
/// ESSIV/XTS sector tweaking in spirit.
#[derive(Debug, Clone)]
pub struct Ctr {
    cipher: Aes128,
}

impl Ctr {
    /// Create a CTR cipher from a 16-byte key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        Ctr {
            cipher: Aes128::new(key),
        }
    }

    /// XOR `data` in place with the keystream starting at (`iv`, `counter`).
    ///
    /// Encryption and decryption are the same operation.
    pub fn apply(&self, iv: &[u8; 12], mut counter: u32, data: &mut [u8]) {
        let mut block = [0u8; 16];
        block[..12].copy_from_slice(iv);
        for chunk in data.chunks_mut(16) {
            block[12..].copy_from_slice(&counter.to_be_bytes());
            let ks = self.cipher.encrypt(&block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

/// AES-128-GCM authenticated encryption (NIST SP 800-38D).
///
/// Used for Gramine-protected-file-style sealed blobs and attestation
/// channel payloads.
#[derive(Debug, Clone)]
pub struct Gcm {
    cipher: Aes128,
    /// GHASH subkey H = E_K(0^128), as a 128-bit big-endian integer.
    h: u128,
}

impl Gcm {
    /// Create a GCM instance from a 16-byte key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let h = u128::from_be_bytes(cipher.encrypt(&[0u8; 16]));
        Gcm { cipher, h }
    }

    /// Encrypt `plaintext` with additional authenticated data `aad`.
    /// Returns `(ciphertext, tag)`.
    #[must_use]
    pub fn encrypt(&self, iv: &[u8; 12], plaintext: &[u8], aad: &[u8]) -> (Vec<u8>, [u8; 16]) {
        let mut ct = plaintext.to_vec();
        // CTR starts at 2 for data; counter 1 is reserved for the tag mask.
        self.ctr_xor(iv, 2, &mut ct);
        let tag = self.compute_tag(iv, &ct, aad);
        (ct, tag)
    }

    /// Decrypt and verify. Returns `None` on tag mismatch.
    #[must_use]
    pub fn decrypt(
        &self,
        iv: &[u8; 12],
        ciphertext: &[u8],
        aad: &[u8],
        tag: &[u8; 16],
    ) -> Option<Vec<u8>> {
        let expected = self.compute_tag(iv, ciphertext, aad);
        if !crate::ct_eq(&expected, tag) {
            return None;
        }
        let mut pt = ciphertext.to_vec();
        self.ctr_xor(iv, 2, &mut pt);
        Some(pt)
    }

    fn ctr_xor(&self, iv: &[u8; 12], start_counter: u32, data: &mut [u8]) {
        let mut block = [0u8; 16];
        block[..12].copy_from_slice(iv);
        let mut counter = start_counter;
        for chunk in data.chunks_mut(16) {
            block[12..].copy_from_slice(&counter.to_be_bytes());
            let ks = self.cipher.encrypt(&block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    fn compute_tag(&self, iv: &[u8; 12], ciphertext: &[u8], aad: &[u8]) -> [u8; 16] {
        let mut ghash = Ghash::new(self.h);
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ciphertext.len() as u64) * 8).to_be_bytes());
        ghash.update_block(&len_block);
        let s = ghash.finalize();

        // Tag = GHASH ^ E_K(J0) where J0 = IV || 0^31 || 1.
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(iv);
        j0[15] = 1;
        let ek_j0 = self.cipher.encrypt(&j0);
        let mut tag = [0u8; 16];
        for i in 0..16 {
            tag[i] = s[i] ^ ek_j0[i];
        }
        tag
    }
}

/// GHASH universal hash over GF(2^128).
struct Ghash {
    h: u128,
    y: u128,
}

impl Ghash {
    fn new(h: u128) -> Self {
        Ghash { h, y: 0 }
    }

    fn update_block(&mut self, block: &[u8; 16]) {
        self.y ^= u128::from_be_bytes(*block);
        self.y = gf_mul(self.y, self.h);
    }

    /// Absorb data, zero-padding the final partial block.
    fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.update_block(&block);
        }
    }

    fn finalize(self) -> [u8; 16] {
        self.y.to_be_bytes()
    }
}

/// Multiply two elements of GF(2^128) with the GCM polynomial
/// x^128 + x^7 + x^2 + x + 1, using the GCM bit order (bit 0 = MSB).
fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, to_hex};

    #[test]
    fn nist_gcm_test_case_1() {
        // Key 0^128, IV 0^96, empty pt/aad -> tag 58e2fccefa7e3061367f1d57a4e7455a.
        let gcm = Gcm::new(&[0u8; 16]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], b"", b"");
        assert!(ct.is_empty());
        assert_eq!(to_hex(&tag), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_gcm_test_case_2() {
        // Key 0^128, IV 0^96, pt 0^128 ->
        // ct 0388dace60b6a392f328c2b971b2fe78, tag ab6e47d42cec13bdf53a67b21257bddf.
        let gcm = Gcm::new(&[0u8; 16]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(to_hex(&ct), "0388dace60b6a392f328c2b971b2fe78");
        assert_eq!(to_hex(&tag), "ab6e47d42cec13bdf53a67b21257bddf");
    }

    #[test]
    fn gcm_roundtrip_with_aad() {
        let key: [u8; 16] = from_hex("feffe9928665731c6d6a8f9467308308")
            .unwrap()
            .try_into()
            .unwrap();
        let gcm = Gcm::new(&key);
        let iv = [3u8; 12];
        let (ct, tag) = gcm.encrypt(&iv, b"confidential weights", b"manifest-v1");
        let pt = gcm.decrypt(&iv, &ct, b"manifest-v1", &tag).unwrap();
        assert_eq!(pt, b"confidential weights");
        assert!(gcm.decrypt(&iv, &ct, b"manifest-v2", &tag).is_none());
    }

    #[test]
    fn ctr_roundtrip_and_seekability() {
        let ctr = Ctr::new(&[5u8; 16]);
        let iv = [9u8; 12];
        let mut data = b"sector payload for the LUKS-like device".to_vec();
        let orig = data.clone();
        ctr.apply(&iv, 7, &mut data);
        assert_ne!(data, orig);
        ctr.apply(&iv, 7, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn ctr_different_counters_differ() {
        let ctr = Ctr::new(&[5u8; 16]);
        let iv = [0u8; 12];
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        ctr.apply(&iv, 0, &mut a);
        ctr.apply(&iv, 1, &mut b);
        assert_ne!(a, b);
        // Counter 1's keystream block equals the second block of counter 0.
        assert_eq!(&a[16..32], &b[..16]);
    }

    #[test]
    fn gf_mul_identity_and_commutativity() {
        // In GCM bit order, the multiplicative identity is 0x80...0 (bit0=MSB).
        let one: u128 = 1 << 127;
        let x = 0x0123456789abcdef0123456789abcdefu128;
        assert_eq!(gf_mul(x, one), x);
        assert_eq!(gf_mul(one, x), x);
        let y = 0xfedcba9876543210fedcba9876543210u128;
        assert_eq!(gf_mul(x, y), gf_mul(y, x));
    }

    #[test]
    fn gf_mul_distributes_over_xor() {
        let a = 0xdeadbeefdeadbeefdeadbeefdeadbeefu128;
        let b = 0x0badf00d0badf00d0badf00d0badf00du128;
        let c = 0x11112222333344445555666677778888u128;
        assert_eq!(gf_mul(a ^ b, c), gf_mul(a, c) ^ gf_mul(b, c));
    }
}
