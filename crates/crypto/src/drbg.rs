//! Deterministic random bit generator (hash-DRBG style, SHA-256 based).
//!
//! TEEs expose hardware entropy (`RDSEED`, SGX `sgx_read_rand`); the
//! simulation needs *reproducible* randomness instead, so this DRBG is
//! seeded explicitly and produces identical streams across runs — every
//! experiment in the paper harness is replayable bit-for-bit.

use crate::sha256::Sha256;

/// A simple hash-counter DRBG: `output_i = SHA256(key || counter_i)`,
/// rekeyed every 2^32 blocks.
#[derive(Debug, Clone)]
pub struct HashDrbg {
    key: [u8; 32],
    counter: u64,
    buffer: [u8; 32],
    buffered: usize,
}

impl HashDrbg {
    /// Create a DRBG from arbitrary seed bytes.
    #[must_use]
    pub fn new(seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"cllm-drbg-v1");
        h.update(seed);
        HashDrbg {
            key: h.finalize(),
            counter: 0,
            buffer: [0; 32],
            buffered: 0,
        }
    }

    /// Fill `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buffered == 0 {
                let mut h = Sha256::new();
                h.update(&self.key);
                h.update(&self.counter.to_be_bytes());
                self.buffer = h.finalize();
                self.buffered = 32;
                self.counter += 1;
            }
            *byte = self.buffer[32 - self.buffered];
            self.buffered -= 1;
        }
    }

    /// Produce the next pseudorandom `u64`.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }

    /// Produce a uniform `f64` in `[0, 1)`.
    #[must_use]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Produce a fresh 16-byte key (for sealing / session keys).
    #[must_use]
    pub fn gen_key16(&mut self) -> [u8; 16] {
        let mut k = [0u8; 16];
        self.fill(&mut k);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = HashDrbg::new(b"seed");
        let mut b = HashDrbg::new(b"seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HashDrbg::new(b"seed-a");
        let mut b = HashDrbg::new(b"seed-b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_is_stream_consistent() {
        // Reading 16 bytes twice equals reading 32 at once.
        let mut a = HashDrbg::new(b"s");
        let mut b = HashDrbg::new(b"s");
        let mut x = [0u8; 32];
        a.fill(&mut x);
        let mut y1 = [0u8; 16];
        let mut y2 = [0u8; 16];
        b.fill(&mut y1);
        b.fill(&mut y2);
        assert_eq!(&x[..16], &y1);
        assert_eq!(&x[16..], &y2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut d = HashDrbg::new(b"f");
        for _ in 0..1000 {
            let v = d.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_roughly_uniform() {
        let mut d = HashDrbg::new(b"u");
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| d.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
