//! The parallel runner must be a pure wall-clock optimization: for every
//! experiment in the registry, the parallel run's `ExperimentResult` rows
//! and rendered JSON are identical to the sequential run's.

use cllm_core::experiments::all_experiments;
use cllm_core::runner;

#[test]
fn parallel_matches_sequential_for_all_experiments() {
    let ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();

    cllm_perf::cache::clear();
    let sequential = runner::run_all_sequential();

    cllm_perf::cache::clear();
    let parallel = runner::run_all_parallel(4);

    assert_eq!(sequential.len(), ids.len());
    assert_eq!(parallel.len(), ids.len());
    for ((id, seq), par) in ids.iter().zip(&sequential).zip(&parallel) {
        assert_eq!(seq.id, *id, "sequential run out of paper order");
        assert_eq!(par.id, *id, "parallel run out of paper order");
        assert_eq!(seq.rows, par.rows, "{id}: rows diverge");
        assert_eq!(seq, par, "{id}: results diverge");
        let seq_json = serde_json::to_string_pretty(seq.to_json()).expect("serializes");
        let par_json = serde_json::to_string_pretty(par.to_json()).expect("serializes");
        assert_eq!(seq_json, par_json, "{id}: rendered JSON diverges");
    }
}

#[test]
fn warm_cache_changes_nothing() {
    // Running an experiment again over a warm memoization cache must
    // reproduce the cold-cache result exactly.
    cllm_perf::cache::clear();
    let cold = runner::run_one("fig9").expect("fig9 exists");
    let warm = runner::run_one("fig9").expect("fig9 exists");
    assert!(
        cllm_perf::cache::stats().hits > 0,
        "warm run should hit the cache"
    );
    assert_eq!(cold, warm);
}
