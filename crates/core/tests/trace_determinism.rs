//! The observability outputs — the `time_attribution` table and the
//! Chrome trace-event export of every traceable experiment — must be
//! byte-identical for their pinned seeds no matter how many runner
//! threads evaluate the lanes: `Trace::merge` assigns lane ids by input
//! order, never by completion order.
//!
//! This lives in its own single-test integration binary because it
//! mutates the process-global `CLLM_RUNNER_THREADS` environment
//! variable; sharing a binary with other tests would race on it.

#[test]
fn trace_and_attribution_are_byte_identical_across_thread_counts() {
    let run_with = |threads: &str| {
        std::env::set_var("CLLM_RUNNER_THREADS", threads);
        let r = cllm_core::experiments::run_by_id("time_attribution")
            .expect("time_attribution registered");
        let table_json = serde_json::to_string_pretty(r.to_json()).expect("serializes");
        let traces: Vec<String> = cllm_core::experiments::TRACEABLE
            .iter()
            .map(|id| {
                let trace = cllm_core::experiments::trace_by_id(id)
                    .unwrap_or_else(|| panic!("{id} is traceable"));
                cllm_obs::chrome_trace_json(&trace)
            })
            .collect();
        (r.render(), table_json, traces)
    };
    let (render_1, json_1, traces_1) = run_with("1");
    let (render_4, json_4, traces_4) = run_with("4");
    let (render_8, json_8, traces_8) = run_with("8");
    std::env::remove_var("CLLM_RUNNER_THREADS");

    assert_eq!(
        json_1, json_4,
        "time_attribution JSON diverges between 1 and 4 runner threads"
    );
    assert_eq!(
        json_1, json_8,
        "time_attribution JSON diverges between 1 and 8 runner threads"
    );
    assert_eq!(render_1, render_4);
    assert_eq!(render_1, render_8);

    for (i, id) in cllm_core::experiments::TRACEABLE.iter().enumerate() {
        assert_eq!(
            traces_1[i], traces_4[i],
            "{id} trace bytes diverge between 1 and 4 runner threads"
        );
        assert_eq!(
            traces_1[i], traces_8[i],
            "{id} trace bytes diverge between 1 and 8 runner threads"
        );
    }

    // The pinned golden matches what this process just produced, so the
    // committed snapshot is itself thread-count independent.
    let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/time_attribution.json");
    let golden = std::fs::read_to_string(golden).expect("golden pinned");
    assert_eq!(
        json_1.trim_end(),
        golden.trim_end(),
        "time_attribution drifted from its golden snapshot"
    );
}
