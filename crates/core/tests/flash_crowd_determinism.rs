//! The flash_crowd experiment (9 autoscale arms across SGX/TDX/cGPU)
//! must be byte-identical for its pinned seeds no matter how many
//! runner threads the harness is configured with — the autoscaler is a
//! single-threaded loop over the deterministic event kernel, and the
//! generative traffic trace is seed-driven.
//!
//! This lives in its own single-test integration binary because it
//! mutates the process-global `CLLM_RUNNER_THREADS` environment
//! variable; sharing a binary with other tests would race on it.

#[test]
fn flash_crowd_is_byte_identical_across_thread_counts() {
    let run_with = |threads: &str| {
        std::env::set_var("CLLM_RUNNER_THREADS", threads);
        let r = cllm_core::experiments::run_by_id("flash_crowd").expect("flash_crowd registered");
        let json = serde_json::to_string_pretty(r.to_json()).expect("serializes");
        (r.render(), json)
    };
    let (render_1, json_1) = run_with("1");
    let (render_4, json_4) = run_with("4");
    let (render_7, json_7) = run_with("7");
    std::env::remove_var("CLLM_RUNNER_THREADS");

    assert_eq!(
        json_1, json_4,
        "flash_crowd JSON diverges between 1 and 4 runner threads"
    );
    assert_eq!(
        json_1, json_7,
        "flash_crowd JSON diverges between 1 and 7 runner threads"
    );
    assert_eq!(render_1, render_4);
    assert_eq!(render_1, render_7);

    // And the isolated runner path reproduces the same bytes too.
    let isolated = cllm_core::runner::run_one_isolated("flash_crowd").expect("runs clean");
    let isolated_json = serde_json::to_string_pretty(isolated.to_json()).expect("serializes");
    assert_eq!(json_1, isolated_json);
}
