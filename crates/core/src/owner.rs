//! The model owner's side of the confidential deployment.
//!
//! The owner holds the intellectual property (fine-tuned weights) and a
//! verification policy (golden measurement, minimum TCB). They encrypt
//! the model once, and release the decryption key only to an enclave
//! that attests successfully — the deployment model Figure 1 motivates.

use cllm_crypto::drbg::HashDrbg;
use cllm_crypto::{aead_open, aead_seal, AuthError};
use cllm_infer::model::TinyModel;
use cllm_infer::serialize::{model_from_bytes, model_to_bytes, SerializeError};
use cllm_tee::attestation::{verify_policy, AttestError, Measurement, Quote};
use cllm_tee::session::{Challenge, Record, Response, SecureChannel, SessionError, Verifier};

/// A model encrypted at rest; safe to hand to any cloud provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedModel {
    /// AES-GCM sealed weight bytes (`ciphertext || tag`).
    pub ciphertext: Vec<u8>,
    /// Nonce used at encryption time.
    pub nonce: Vec<u8>,
}

impl EncryptedModel {
    /// Size on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ciphertext.len()
    }

    /// Whether the blob is empty (never for a real model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }
}

/// Errors on the owner's side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnerError {
    /// The model could not be serialized.
    Serialize(SerializeError),
    /// Attestation failed; the key is withheld.
    Attestation(AttestError),
    /// Decryption failed (wrong key or tampered blob).
    Decrypt(AuthError),
    /// The attested secure channel could not be established.
    Session(SessionError),
}

impl std::fmt::Display for OwnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OwnerError::Serialize(e) => write!(f, "serialize: {e}"),
            OwnerError::Attestation(e) => write!(f, "attestation: {e}"),
            OwnerError::Decrypt(e) => write!(f, "decrypt: {e}"),
            OwnerError::Session(e) => write!(f, "session: {e}"),
        }
    }
}

impl std::error::Error for OwnerError {}

/// The model owner: holds the model key and the verification policy.
#[derive(Debug)]
pub struct ModelOwner {
    model_key: [u8; 16],
    golden: Measurement,
    min_svn: u16,
    /// The hardware vendor's root the owner trusts (stands in for the
    /// Intel PCS certificate chain).
    hw_root: Vec<u8>,
    nonce_gen: HashDrbg,
}

impl ModelOwner {
    /// Create an owner trusting `hw_root`, pinning `golden`, requiring at
    /// least `min_svn`. `seed` derives the model key deterministically
    /// (reproducibility; a real owner uses an HSM).
    #[must_use]
    pub fn new(hw_root: &[u8], golden: Measurement, min_svn: u16, seed: &[u8]) -> Self {
        let mut drbg = HashDrbg::new(seed);
        ModelOwner {
            model_key: drbg.gen_key16(),
            golden,
            min_svn,
            hw_root: hw_root.to_vec(),
            nonce_gen: drbg,
        }
    }

    /// Encrypt a model for at-rest storage.
    pub fn encrypt_model(&mut self, model: &TinyModel) -> Result<EncryptedModel, OwnerError> {
        let bytes = model_to_bytes(model).map_err(OwnerError::Serialize)?;
        let mut nonce = vec![0u8; 16];
        self.nonce_gen.fill(&mut nonce);
        let ciphertext = aead_seal(&self.model_key, &nonce, &bytes, b"cllm-model-v1");
        Ok(EncryptedModel { ciphertext, nonce })
    }

    /// Issue a fresh attestation challenge nonce.
    pub fn challenge(&mut self) -> Vec<u8> {
        let mut nonce = vec![0u8; 16];
        self.nonce_gen.fill(&mut nonce);
        nonce
    }

    /// Verify an enclave quote against the policy; on success release the
    /// model key (in reality: over the attested secure channel).
    pub fn release_key(&self, quote: &Quote, nonce: &[u8]) -> Result<[u8; 16], OwnerError> {
        verify_policy(quote, &self.hw_root, nonce, &self.golden, self.min_svn)
            .map_err(OwnerError::Attestation)?;
        Ok(self.model_key)
    }

    /// Begin an attested session: returns the verifier state and the
    /// challenge to forward to the enclave.
    pub fn begin_session(&mut self) -> (Verifier, Challenge) {
        let mut seed = vec![0u8; 16];
        self.nonce_gen.fill(&mut seed);
        Verifier::start(self.golden, &self.hw_root, &seed)
    }

    /// Complete the session: verify the enclave's response (quote bound to
    /// the channel transcript), then release the model key as the first
    /// protected record. Returns the owner's channel end and the record
    /// carrying the key.
    pub fn release_key_secure(
        &self,
        verifier: &Verifier,
        response: &Response,
    ) -> Result<(SecureChannel, Record), OwnerError> {
        if response.quote.report.svn < self.min_svn {
            return Err(OwnerError::Attestation(AttestError::TcbOutOfDate));
        }
        let mut channel = verifier.finish(response).map_err(OwnerError::Session)?;
        let record = channel.send(&self.model_key);
        Ok((channel, record))
    }

    /// Decrypt an encrypted model with a released key (runs inside the
    /// enclave).
    pub fn decrypt_model(
        key: &[u8; 16],
        encrypted: &EncryptedModel,
    ) -> Result<TinyModel, OwnerError> {
        let bytes = aead_open(
            key,
            &encrypted.nonce,
            &encrypted.ciphertext,
            b"cllm-model-v1",
        )
        .map_err(OwnerError::Decrypt)?;
        model_from_bytes(&bytes).map_err(OwnerError::Serialize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_infer::model::TinyConfig;
    use cllm_tee::attestation::generate_quote;

    fn model() -> TinyModel {
        TinyModel::init(&TinyConfig::test_small(), 3)
    }

    fn golden() -> Measurement {
        Measurement([0xAB; 32])
    }

    #[test]
    fn full_key_release_flow() {
        let mut owner = ModelOwner::new(b"hw", golden(), 5, b"seed");
        let encrypted = owner.encrypt_model(&model()).unwrap();
        let nonce = owner.challenge();
        let quote = generate_quote(b"hw", golden(), 7, &nonce);
        let key = owner.release_key(&quote, &nonce).unwrap();
        let decrypted = ModelOwner::decrypt_model(&key, &encrypted).unwrap();
        assert_eq!(decrypted, model());
    }

    #[test]
    fn wrong_measurement_gets_no_key() {
        let mut owner = ModelOwner::new(b"hw", golden(), 5, b"seed");
        let nonce = owner.challenge();
        let evil = Measurement([0xEE; 32]);
        let quote = generate_quote(b"hw", evil, 7, &nonce);
        assert!(matches!(
            owner.release_key(&quote, &nonce),
            Err(OwnerError::Attestation(AttestError::MeasurementMismatch))
        ));
    }

    #[test]
    fn stale_nonce_gets_no_key() {
        let mut owner = ModelOwner::new(b"hw", golden(), 5, b"seed");
        let old = owner.challenge();
        let fresh = owner.challenge();
        let quote = generate_quote(b"hw", golden(), 7, &old);
        assert!(owner.release_key(&quote, &fresh).is_err());
    }

    #[test]
    fn low_tcb_gets_no_key() {
        let mut owner = ModelOwner::new(b"hw", golden(), 9, b"seed");
        let nonce = owner.challenge();
        let quote = generate_quote(b"hw", golden(), 7, &nonce);
        assert!(matches!(
            owner.release_key(&quote, &nonce),
            Err(OwnerError::Attestation(AttestError::TcbOutOfDate))
        ));
    }

    #[test]
    fn ciphertext_hides_weights() {
        let mut owner = ModelOwner::new(b"hw", golden(), 5, b"seed");
        let encrypted = owner.encrypt_model(&model()).unwrap();
        // The serialized plaintext starts with the CLLM magic; the
        // ciphertext must not.
        assert_ne!(&encrypted.ciphertext[..4], b"CLLM");
    }

    #[test]
    fn wrong_key_cannot_decrypt() {
        let mut owner = ModelOwner::new(b"hw", golden(), 5, b"seed");
        let encrypted = owner.encrypt_model(&model()).unwrap();
        assert!(matches!(
            ModelOwner::decrypt_model(&[0u8; 16], &encrypted),
            Err(OwnerError::Decrypt(_))
        ));
    }

    #[test]
    fn tampered_model_detected() {
        let mut owner = ModelOwner::new(b"hw", golden(), 5, b"seed");
        let mut encrypted = owner.encrypt_model(&model()).unwrap();
        let mid = encrypted.ciphertext.len() / 2;
        encrypted.ciphertext[mid] ^= 1;
        let nonce = owner.challenge();
        let quote = generate_quote(b"hw", golden(), 7, &nonce);
        let key = owner.release_key(&quote, &nonce).unwrap();
        assert!(ModelOwner::decrypt_model(&key, &encrypted).is_err());
    }
}
