//! The end-to-end confidential inference pipeline.
//!
//! `deploy` walks the full trust chain the paper's deployments rely on:
//!
//! 1. The model owner encrypts the weights ([`crate::ModelOwner`]).
//! 2. The platform launches an enclave from a validated Gramine-like
//!    manifest and measures it.
//! 3. The owner attests the enclave with a fresh nonce and — only on
//!    success — releases the weight-decryption key.
//! 4. The weights are decrypted *inside* the enclave and inference runs
//!    with the real `cllm-infer` engine.
//!
//! The same pipeline exposes [`ConfidentialPipeline::estimate`], which
//! prices any request shape on the paper's testbed models via the
//! `cllm-perf` simulator — functional truth and performance prediction in
//! one object.

use crate::owner::{ModelOwner, OwnerError};
use cllm_hw::DType;
use cllm_infer::generate::{generate, Sampling};
use cllm_infer::model::{TinyConfig, TinyModel};
use cllm_infer::tokenizer::BpeTokenizer;
use cllm_perf::{simulate_cpu, simulate_gpu, CpuTarget};
use cllm_tee::enclave::Enclave;
use cllm_tee::manifest::{Manifest, ManifestError};
use cllm_tee::platform::{GpuTeeConfig, Platform};
use cllm_workload::phase::RequestSpec;
use cllm_workload::{zoo, ModelConfig};

/// Everything needed to deploy a confidential inference service.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// The execution platform (which TEE, if any).
    pub platform: Platform,
    /// Data type of the production deployment being modelled.
    pub dtype: DType,
    /// Architecture whose performance is being modelled.
    pub workload_model: ModelConfig,
    /// CPU target for estimates (ignored for GPU platforms).
    pub cpu_target: CpuTarget,
    /// Config of the functional tiny model run inside the enclave.
    pub tiny_config: TinyConfig,
    /// Weight-initialization seed for the tiny model.
    pub tiny_seed: u64,
    /// Hardware vendor root of trust.
    pub hw_root: Vec<u8>,
    /// Minimum acceptable TCB security version.
    pub min_svn: u16,
}

impl DeploymentSpec {
    /// A demo spec: Llama2-7B performance model, tiny functional model.
    #[must_use]
    pub fn tiny_demo(platform: Platform) -> Self {
        DeploymentSpec {
            platform,
            dtype: DType::Bf16,
            workload_model: zoo::llama2_7b(),
            cpu_target: CpuTarget::emr1_single_socket(),
            tiny_config: TinyConfig::test_small(),
            tiny_seed: 1234,
            hw_root: b"simulated-hw-root".to_vec(),
            min_svn: 5,
        }
    }
}

/// Deployment failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The manifest failed validation.
    Manifest(ManifestError),
    /// Attestation or sealed-weight handling failed.
    Owner(OwnerError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Manifest(e) => write!(f, "manifest: {e}"),
            PipelineError::Owner(e) => write!(f, "owner: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ManifestError> for PipelineError {
    fn from(e: ManifestError) -> Self {
        PipelineError::Manifest(e)
    }
}

impl From<OwnerError> for PipelineError {
    fn from(e: OwnerError) -> Self {
        PipelineError::Owner(e)
    }
}

/// Performance estimate for one request shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// First-token (prefill) latency, seconds.
    pub prefill_s: f64,
    /// Mean next-token latency, seconds.
    pub token_latency_s: f64,
    /// Steady-state decode throughput, tokens/second.
    pub decode_tps: f64,
    /// End-to-end throughput including prefill, tokens/second.
    pub e2e_tps: f64,
}

/// A deployed confidential inference service.
#[derive(Debug)]
pub struct ConfidentialPipeline {
    spec: DeploymentSpec,
    enclave: Enclave,
    model: TinyModel,
    tokenizer: BpeTokenizer,
}

impl ConfidentialPipeline {
    /// Deploy: build manifest, launch enclave, attest, release key,
    /// decrypt weights inside the enclave.
    pub fn deploy(spec: &DeploymentSpec) -> Result<Self, PipelineError> {
        // The owner prepares the model and its encrypted artifact.
        let plaintext_model = TinyModel::init(&spec.tiny_config, spec.tiny_seed);

        // Build the manifest; the encrypted model file is an encrypted
        // mount, the runtime is a trusted (hash-pinned) file.
        let manifest = Manifest::builder("cllm-infer-server")
            .enclave_size_gib(64)
            .threads(spec.cpu_target.cores_per_socket.max(1))
            .trusted_file("libcllm_infer.so", b"runtime-v1")
            .encrypted_file("model.bin", "weights-key")
            .build();
        manifest.validate()?;

        let mut owner = ModelOwner::new(
            &spec.hw_root,
            manifest.measurement(),
            spec.min_svn,
            b"owner-hsm-seed",
        );
        let encrypted = owner.encrypt_model(&plaintext_model)?;
        drop(plaintext_model); // the cloud only ever sees ciphertext

        // Launch, then establish an attested secure channel: the quote is
        // bound to the channel transcript, so the key release cannot be
        // relayed to a machine in the middle.
        let enclave = Enclave::launch(&manifest, &spec.hw_root)?;
        let (verifier, challenge) = owner.begin_session();
        let (response, mut enclave_chan) = cllm_tee::session::enclave_respond(
            &spec.hw_root,
            enclave.measurement(),
            7,
            &challenge,
            b"enclave-session-seed",
        )
        .map_err(crate::owner::OwnerError::Session)?;
        let (_owner_chan, key_record) = owner.release_key_secure(&verifier, &response)?;
        let key_bytes = enclave_chan
            .recv(&key_record)
            .map_err(crate::owner::OwnerError::Session)?;
        let key: [u8; 16] = key_bytes.as_slice().try_into().map_err(|_| {
            crate::owner::OwnerError::Session(cllm_tee::session::SessionError::BadRecord)
        })?;

        // Decrypt inside the enclave.
        let mut model = ModelOwner::decrypt_model(&key, &encrypted)?;
        if spec.dtype == DType::Int8 {
            model = model.quantized();
        }

        let tokenizer = BpeTokenizer::bytes_only();
        Ok(ConfidentialPipeline {
            spec: spec.clone(),
            enclave,
            model,
            tokenizer,
        })
    }

    /// The deployment spec.
    #[must_use]
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// The enclave measurement users can pin.
    #[must_use]
    pub fn measurement_hex(&self) -> String {
        self.enclave.measurement().hex()
    }

    /// Generate `max_new` tokens of text from a prompt, inside the
    /// enclave, with the functional engine (greedy decoding).
    #[must_use]
    pub fn generate(&self, prompt: &str, max_new: usize) -> String {
        let mut ids = self.tokenizer.encode(prompt);
        ids.retain(|&t| t < self.model.config.vocab);
        if ids.is_empty() {
            ids.push(0);
        }
        let budget = self.model.config.max_seq.saturating_sub(ids.len() + 1);
        let out = generate(&self.model, &ids, max_new.min(budget), Sampling::Greedy, 0);
        self.enclave.record_exits(1); // response leaves the enclave
        self.tokenizer.decode(&out)
    }

    /// Predict the performance of this deployment for a request shape on
    /// the paper's testbeds.
    #[must_use]
    pub fn estimate(&self, req: &RequestSpec) -> Estimate {
        match &self.spec.platform {
            Platform::Cpu(tee) => {
                let r = simulate_cpu(
                    &self.spec.workload_model,
                    req,
                    self.spec.dtype,
                    &self.spec.cpu_target,
                    tee,
                );
                Estimate {
                    prefill_s: r.prefill_s,
                    token_latency_s: r.summary.mean,
                    decode_tps: r.decode_tps,
                    e2e_tps: r.e2e_tps,
                }
            }
            Platform::Gpu(cfg) => {
                let gpu = cllm_hw::presets::h100_nvl();
                let r = simulate_gpu(&self.spec.workload_model, req, self.spec.dtype, &gpu, cfg);
                Estimate {
                    prefill_s: r.prefill_s,
                    token_latency_s: r.summary.mean,
                    decode_tps: r.decode_tps,
                    e2e_tps: r.e2e_tps,
                }
            }
        }
    }

    /// Enclave exits recorded so far (SGX cost accounting).
    #[must_use]
    pub fn enclave_exits(&self) -> u64 {
        self.enclave.exit_count()
    }

    /// Convenience: build a GPU platform.
    #[must_use]
    pub fn gpu_platform(confidential: bool) -> Platform {
        Platform::Gpu(if confidential {
            GpuTeeConfig::confidential()
        } else {
            GpuTeeConfig::native()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_tee::platform::CpuTeeConfig;

    #[test]
    fn deploy_and_generate_on_every_platform() {
        for platform in [
            Platform::Cpu(CpuTeeConfig::bare_metal()),
            Platform::Cpu(CpuTeeConfig::sgx()),
            Platform::Cpu(CpuTeeConfig::tdx()),
            ConfidentialPipeline::gpu_platform(true),
        ] {
            let spec = DeploymentSpec::tiny_demo(platform);
            let p = ConfidentialPipeline::deploy(&spec).unwrap();
            let text = p.generate("hello", 6);
            assert!(!text.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_across_deployments() {
        let a = ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(Platform::Cpu(
            CpuTeeConfig::tdx(),
        )))
        .unwrap();
        let b = ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(Platform::Cpu(
            CpuTeeConfig::sgx(),
        )))
        .unwrap();
        // Same sealed weights -> same text, regardless of TEE.
        assert_eq!(a.generate("prompt", 12), b.generate("prompt", 12));
    }

    #[test]
    fn untrusted_hardware_cannot_deploy() {
        let mut spec = DeploymentSpec::tiny_demo(Platform::Cpu(CpuTeeConfig::tdx()));
        // Owner trusts a different root than the machine's.
        spec.min_svn = 200; // TCB check can never pass
        assert!(matches!(
            ConfidentialPipeline::deploy(&spec),
            Err(PipelineError::Owner(_))
        ));
    }

    #[test]
    fn estimates_reflect_tee_overheads() {
        let req = RequestSpec::new(6, 1024, 32).with_beam(4);
        let bare = ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(Platform::Cpu(
            CpuTeeConfig::bare_metal(),
        )))
        .unwrap()
        .estimate(&req);
        let tdx = ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(Platform::Cpu(
            CpuTeeConfig::tdx(),
        )))
        .unwrap()
        .estimate(&req);
        assert!(tdx.decode_tps < bare.decode_tps);
        let overhead = bare.decode_tps / tdx.decode_tps - 1.0;
        assert!(overhead < 0.15, "overhead {overhead}");
    }

    #[test]
    fn int8_spec_quantizes_model() {
        let mut spec = DeploymentSpec::tiny_demo(Platform::Cpu(CpuTeeConfig::tdx()));
        spec.dtype = DType::Int8;
        let p = ConfidentialPipeline::deploy(&spec).unwrap();
        assert!(!p.generate("quantized", 4).is_empty());
    }

    #[test]
    fn gpu_estimate_is_much_faster() {
        let req = RequestSpec::new(1, 512, 16);
        let cpu = ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(Platform::Cpu(
            CpuTeeConfig::tdx(),
        )))
        .unwrap()
        .estimate(&req);
        let gpu = ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(
            ConfidentialPipeline::gpu_platform(true),
        ))
        .unwrap()
        .estimate(&req);
        assert!(gpu.token_latency_s < cpu.token_latency_s / 3.0);
    }
}
