//! Confidential LLM inference: the paper's primary contribution as a
//! reusable library.
//!
//! `cllm-core` ties every substrate together behind one public API:
//!
//! * [`ConfidentialPipeline`] — the end-to-end confidential deployment:
//!   a model owner encrypts weights, the platform launches a (simulated)
//!   enclave, remote attestation releases the decryption key, the weights
//!   are decrypted *inside* the enclave, and real tokens are generated
//!   with the `cllm-infer` engine — while `cllm-perf` predicts what the
//!   same deployment costs on the paper's Emerald Rapids / H100 testbeds.
//! * [`experiments`] — one runner per table/figure of the paper; each
//!   regenerates the published result's shape from the simulator and
//!   renders it as a table plus machine-readable JSON.
//! * [`runner`] — executes the whole registry across a bounded worker
//!   pool (backed by the `cllm-perf` simulation cache) with output
//!   byte-identical to the sequential run.
//! * [`insights`] — the paper's 12 insights as executable checks.
//! * [`summary`] — Table I (the security/performance/cost matrix).
//!
//! # Quickstart
//!
//! ```
//! use cllm_core::pipeline::{DeploymentSpec, ConfidentialPipeline};
//! use cllm_tee::platform::{CpuTeeConfig, Platform};
//!
//! let spec = DeploymentSpec::tiny_demo(Platform::Cpu(CpuTeeConfig::tdx()));
//! let pipeline = ConfidentialPipeline::deploy(&spec).expect("attestation succeeds");
//! let text = pipeline.generate("confidential inference", 8);
//! assert!(!text.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod insights;
pub mod owner;
pub mod pipeline;
pub mod runner;
pub mod scenario;
pub mod summary;
pub mod table;

pub use owner::{EncryptedModel, ModelOwner};
pub use pipeline::{ConfidentialPipeline, DeploymentSpec, PipelineError};
