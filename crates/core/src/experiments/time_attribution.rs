//! Time-attribution extension: where each platform's makespan goes when
//! the resilience fault plan is active. The span trace from the traced
//! serving simulation is folded into per-node totals and rendered as
//! percentage shares of the makespan — prefill, decode, re-attestation,
//! idle and outage — with hard conservation invariants enforced before
//! any row is emitted: per-node `busy + idle + outage == makespan` and
//! per-request span-chain sum == end-to-end latency.
//!
//! The platforms mirror the paper's serving comparison (bare metal, TDX,
//! SGX, confidential GPU); the fault plan, seed and arrival trace are
//! exactly the `resilience` experiment's, so the two tables describe the
//! same runs from complementary angles: `resilience` reports *outcomes*
//! (SLO, cost), this table reports *where the time went*.

use super::resilience::traced_report_for;
use super::{Column, ExperimentResult, Unit, Value};
use cllm_obs::{check, node_totals, NodeTotals};
use cllm_tee::platform::TeeKind;

/// The platforms attributed, in table order: the paper's CPU TEEs
/// bracketed by bare metal and the confidential GPU.
pub const PLATFORMS: [TeeKind; 4] = [
    TeeKind::BareMetal,
    TeeKind::Tdx,
    TeeKind::Sgx,
    TeeKind::GpuCc,
];

/// Conservation tolerance: relative to the makespan, far below the
/// table's rendering precision.
const EPS: f64 = 1e-6;

/// Per-node totals for one platform under the resilience fault plan,
/// with conservation verified against the untraced report.
///
/// # Panics
///
/// Panics if the trace violates a conservation invariant — a violation
/// means the instrumentation lost or double-counted time and the table
/// would be wrong.
#[must_use]
pub fn totals_for(kind: TeeKind) -> NodeTotals {
    let (report, trace) = traced_report_for(kind);
    let conservation = check(&trace, EPS);
    assert!(
        conservation.ok(),
        "{kind:?}: trace conservation violated: {:?}",
        conservation.errors
    );
    let mut totals = node_totals(&trace);
    assert_eq!(totals.len(), 1, "{kind:?}: single-node sim expected");
    let t = totals.remove(0);
    assert!(
        (t.makespan_s - report.makespan_s).abs() <= EPS * report.makespan_s.max(1.0),
        "{kind:?}: trace makespan {} != report makespan {}",
        t.makespan_s,
        report.makespan_s
    );
    t
}

/// Span trace of the attributed runs: one lane per platform, in
/// [`PLATFORMS`] order — the same traces the table's shares are folded
/// from, exportable via `cllm time_attribution --trace`.
#[must_use]
pub fn trace() -> cllm_obs::Trace {
    let lanes = crate::runner::par_map(&PLATFORMS, crate::runner::grid_workers(), |&kind| {
        traced_report_for(kind).1
    });
    cllm_obs::Trace::merge(lanes)
}

fn share(part_s: f64, makespan_s: f64) -> f64 {
    if makespan_s <= 0.0 {
        0.0
    } else {
        part_s / makespan_s * 100.0
    }
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "time_attribution",
        "Where the makespan goes under injected TEE faults: span-accounted time shares",
        vec![
            Column::str("platform"),
            Column::float("makespan_s", Unit::Seconds, 2),
            Column::pct("prefill"),
            Column::pct("decode"),
            Column::pct("reattest"),
            Column::pct("idle"),
            Column::pct("outage"),
        ],
    );
    for kind in PLATFORMS {
        let t = totals_for(kind);
        let shares = [
            share(t.prefill_s, t.makespan_s),
            share(t.decode_s, t.makespan_s),
            share(t.reattest_s + t.requant_s, t.makespan_s),
            share(t.idle_s, t.makespan_s),
            share(t.outage_s, t.makespan_s),
        ];
        let total: f64 = shares.iter().sum();
        assert!(
            (total - 100.0).abs() < 1e-3,
            "{kind:?}: attribution rows sum to {total}, not 100"
        );
        r.push_row(vec![
            Value::str(kind.label()),
            Value::float(t.makespan_s, Unit::Seconds, 2),
            Value::pct(shares[0]),
            Value::pct(shares[1]),
            Value::pct(shares[2]),
            Value::pct(shares[3]),
            Value::pct(shares[4]),
        ]);
    }
    r.note("same arrival trace, fault plan and seed as the resilience experiment; shares are span-accounted and sum to 100% of the makespan by construction");
    r.note("outage dominates every platform at the 600x-accelerated fault rates; SGX trades decode share for re-attestation, and the fast cGPU spends most of its makespan waiting out preemptions rather than computing");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_100_on_every_platform() {
        let r = run();
        assert_eq!(r.rows.len(), PLATFORMS.len());
        // run() already asserts the 100% invariant per row; re-check the
        // rendered cells so the *published* numbers also add up.
        for kind in PLATFORMS {
            let label = kind.label();
            let sum: f64 = ["prefill", "decode", "reattest", "idle", "outage"]
                .iter()
                .map(|c| {
                    r.cell(label, c)
                        .and_then(|s| s.trim_end_matches('%').parse::<f64>().ok())
                        .unwrap_or(0.0)
                })
                .sum();
            assert!(
                (sum - 100.0).abs() < 0.2,
                "{label}: rendered shares sum to {sum}"
            );
        }
    }

    #[test]
    fn confidential_platforms_pay_outage_time() {
        for kind in [TeeKind::Tdx, TeeKind::Sgx, TeeKind::GpuCc] {
            let t = totals_for(kind);
            assert!(
                t.outage_s > 0.0,
                "{kind:?}: resilience fault plan injected no outage"
            );
        }
    }

    #[test]
    fn totals_are_consistent() {
        let t = totals_for(TeeKind::Tdx);
        assert!(t.makespan_s > 0.0);
        assert!(
            (t.busy_s + t.idle_s + t.outage_s - t.makespan_s).abs() < 1e-6 * t.makespan_s,
            "busy+idle+outage must tile the makespan"
        );
        assert!((t.prefill_s + t.decode_s + t.reattest_s + t.requant_s - t.busy_s).abs() < 1e-9);
    }
}
