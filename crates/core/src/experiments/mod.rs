//! Paper-experiment runners: one per table/figure.
//!
//! Every runner regenerates the *shape* of a published result — who wins,
//! by roughly what factor, where crossovers fall — from the calibrated
//! simulator, and returns a uniform [`ExperimentResult`] that renders as
//! an aligned text table and serializes to JSON (consumed by
//! `EXPERIMENTS.md` and the `cllm-bench` binaries).
//!
//! | Runner | Reproduces |
//! |--------|-----------|
//! | [`fig1`] | Figure 1 — headline TEE overheads + threat model |
//! | [`fig3`] | Figure 3 — framework comparison (HF/vLLM/llama.cpp/IPEX) |
//! | [`fig4`] | Figure 4 — single-socket throughput/latency overheads |
//! | [`fig5`] | Figure 5 — Llama2-70B NUMA binding (VM B / TDX / VM NB) |
//! | [`fig6`] | Figure 6 — hugepages (VM FH / VM TH / TDX), dual socket |
//! | [`fig7`] | Figure 7 — per-decoder-block-layer trace |
//! | [`fig8`] | Figure 8 — AMX vs no-AMX batch scaling |
//! | [`fig9`] | Figure 9 — batch-size scaling of overheads |
//! | [`fig10`] | Figure 10 — input-size scaling of overheads |
//! | [`fig11`] | Figure 11 — cGPU batch/input scaling |
//! | [`fig12`] | Figure 12 — vCPU scaling + $/Mtoken vs cGPU |
//! | [`fig13`] | Figure 13 — input scaling + $/Mtoken vs cGPU |
//! | [`fig14`] | Figure 14 — RAG pipelines (BM25/reranked/SBERT) in TDX |
//! | [`table1`] | Table I — security/performance/cost summary matrix |
//! | [`model_zoo`] | §III-C3 — overheads across 5 additional LLMs |
//! | [`snc`] | §IV-A — sub-NUMA clustering ablation |
//! | [`sev_snp`] | §III — AMD SEV-SNP cross-check (close to TDX) |
//! | [`b100`] | §V-D3 — Blackwell encrypted-HBM projection |
//! | [`scaleout`] | §V-D4 — multi-GPU vs multi-socket scale-out |
//! | [`model_sizes`] | abstract — Llama2 7B/13B/70B sweep |
//! | [`serving`] | extension — online SLO attainment under TEEs |
//! | [`tco`] | extension — rent vs buy on the paper's list prices |
//! | [`moe`] | extension — mixture-of-experts (Mixtral) under TDX |
//! | [`resilience`] | extension — serving under injected TEE faults |
//! | [`cluster_resilience`] | extension — multi-node fleets under correlated preemption waves |
//! | [`time_attribution`] | extension — span-accounted makespan shares under faults |
//! | [`serve_scale`] | extension — event-kernel scale smoke on a 64-node fleet |
//! | [`batching_pressure`] | extension — paged KV under TEE memory pressure: policies and the batching crossover |
//! | [`flash_crowd`] | extension — flash-crowd survival: cold scale-up vs warm pool vs brownout per platform |
//! | [`spec_decode`] | extension — speculative decoding priced per platform: small draft + chunked verify |

pub mod b100;
pub mod batching_pressure;
pub mod cluster_resilience;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod flash_crowd;
pub mod model_sizes;
pub mod model_zoo;
pub mod moe;
pub mod resilience;
pub mod scaleout;
pub mod serve_scale;
pub mod serving;
pub mod sev_snp;
pub mod snc;
pub mod spec_decode;
pub mod table1;
pub mod tco;
pub mod time_attribution;

pub use crate::table::{Column, ColumnKind, SchemaError, TypedResult, Unit, Value, SCHEMA_VERSION};

/// A named experiment runner, as listed by [`all_experiments`].
pub type ExperimentEntry = (&'static str, fn() -> ExperimentResult);

/// Every experiment returns a typed table; the historical name stays as
/// an alias of [`crate::table::TypedResult`].
pub type ExperimentResult = TypedResult;

/// Format a percentage with one decimal — the string convention of the
/// tables, for qualitative [`Value::Str`] cells and notes. Numeric
/// columns should use [`Value::pct`] instead, which keeps the raw value.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Format a float with `digits` decimals (see [`pct`]; numeric columns
/// should use [`Value::float`]).
#[must_use]
pub fn num(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Registry of every experiment, in paper order.
#[must_use]
pub fn all_experiments() -> Vec<ExperimentEntry> {
    vec![
        ("fig1", fig1::run as fn() -> ExperimentResult),
        ("fig3", fig3::run),
        ("fig4", fig4::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("table1", table1::run),
        ("model_zoo", model_zoo::run),
        ("snc", snc::run),
        ("sev_snp", sev_snp::run),
        ("b100", b100::run),
        ("scaleout", scaleout::run),
        ("model_sizes", model_sizes::run),
        ("serving", serving::run),
        ("tco", tco::run),
        ("moe", moe::run),
        ("resilience", resilience::run),
        ("cluster_resilience", cluster_resilience::run),
        ("time_attribution", time_attribution::run),
        ("serve_scale", serve_scale::run),
        ("batching_pressure", batching_pressure::run),
        ("flash_crowd", flash_crowd::run),
        ("spec_decode", spec_decode::run),
    ]
}

/// Run an experiment by id.
#[must_use]
pub fn run_by_id(id: &str) -> Option<ExperimentResult> {
    all_experiments()
        .into_iter()
        .find(|(eid, _)| *eid == id)
        .map(|(_, f)| f())
}

/// Experiments that can export a span trace (`--trace`), in registry
/// order. Offline roofline sweeps have no event loop to trace; only the
/// serving-simulation experiments do.
pub const TRACEABLE: [&str; 4] = [
    "serving",
    "resilience",
    "cluster_resilience",
    "time_attribution",
];

/// Build the span trace for a traceable experiment. `None` if `id` is
/// unknown or the experiment has nothing to trace (see [`TRACEABLE`]).
#[must_use]
pub fn trace_by_id(id: &str) -> Option<cllm_obs::Trace> {
    match id {
        "serving" => Some(serving::trace()),
        "resilience" => Some(resilience::trace()),
        "cluster_resilience" => Some(cluster_resilience::trace()),
        "time_attribution" => Some(time_attribution::trace()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_includes_notes() {
        let mut r = ExperimentResult::new(
            "t",
            "demo",
            vec![Column::str("a"), Column::str("long_column")],
        );
        r.push_row(vec![Value::str("x"), Value::str("1")]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("long_column"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut r = ExperimentResult::new("t", "demo", vec![Column::str("a"), Column::str("b")]);
        r.push_row(vec![Value::str("only-one")]);
    }

    #[test]
    fn cell_lookup() {
        let mut r =
            ExperimentResult::new("t", "demo", vec![Column::str("key"), Column::int("val")]);
        r.push_row(vec![Value::str("k1"), Value::int(42)]);
        assert_eq!(r.cell("k1", "val").as_deref(), Some("42"));
        assert_eq!(r.cell_i64("k1", "val"), Some(42));
        assert_eq!(r.cell("k2", "val"), None);
        assert_eq!(r.cell("k1", "nope"), None);
    }

    #[test]
    fn registry_is_complete() {
        let ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 30);
        assert!(ids.contains(&"fig4"));
        assert!(ids.contains(&"table1"));
        assert!(ids.contains(&"resilience"));
        assert!(ids.contains(&"cluster_resilience"));
        assert!(ids.contains(&"time_attribution"));
        assert!(ids.contains(&"serve_scale"));
        assert!(ids.contains(&"batching_pressure"));
        assert!(ids.contains(&"flash_crowd"));
        assert!(ids.contains(&"spec_decode"));
        assert!(run_by_id("nope").is_none());
    }
}
