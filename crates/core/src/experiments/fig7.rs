//! Figure 7: per-decoder-block-layer duration and TDX overhead (EMR2,
//! single socket, batch 4, 128 in / 128 out).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::CpuScenario;
use cllm_perf::OpTrace;
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;

fn trace(tee: &CpuTeeConfig) -> Vec<OpTrace> {
    CpuScenario::llama2_7b(RequestSpec::new(4, 128, 128))
        .with_tee(tee.clone())
        .simulate()
        .decode_trace
        .clone()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig7",
        "Per-layer duration and TDX overhead, Llama2-7B decode block (EMR2, batch 4)",
        vec![
            Column::str("layer"),
            Column::float("bare_us", Unit::Micros, 1),
            Column::float("tdx_us", Unit::Micros, 1),
            Column::pct("tdx_overhead"),
            Column::pct("share_of_block"),
        ],
    );
    let bare = trace(&CpuTeeConfig::bare_metal());
    let tdx = trace(&CpuTeeConfig::tdx());
    let total: f64 = bare.iter().map(|t| t.time_s).sum();
    for (b, t) in bare.iter().zip(&tdx) {
        debug_assert_eq!(b.op, t.op);
        r.push_row(vec![
            Value::str(b.op.label()),
            Value::float(b.time_s * 1e6, Unit::Micros, 1),
            Value::float(t.time_s * 1e6, Unit::Micros, 1),
            Value::pct((t.time_s / b.time_s - 1.0) * 100.0),
            Value::pct(b.time_s / total * 100.0),
        ]);
    }
    r.note("paper: decoder blocks take 99.9% of inference time");
    r.note("paper: self-attention and linear SiLU dominate raw cost; layer norms have the largest relative overheads but ~3% of block time");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_workload::ops::BlockOp;

    fn time_of(tr: &[OpTrace], ops: &[BlockOp]) -> f64 {
        tr.iter()
            .filter(|t| ops.contains(&t.op))
            .map(|t| t.time_s)
            .sum()
    }

    #[test]
    fn attention_and_silu_dominate() {
        let bare = trace(&CpuTeeConfig::bare_metal());
        let total: f64 = bare.iter().map(|t| t.time_s).sum();
        let heavy = time_of(
            &bare,
            &[
                BlockOp::QkvProj,
                BlockOp::AttnScores,
                BlockOp::AttnContext,
                BlockOp::OProj,
                BlockOp::GateUpSilu,
            ],
        );
        assert!(heavy / total > 0.6, "share {}", heavy / total);
    }

    #[test]
    fn norms_are_small_share() {
        let bare = trace(&CpuTeeConfig::bare_metal());
        let total: f64 = bare.iter().map(|t| t.time_s).sum();
        let norms = time_of(&bare, &[BlockOp::InputNorm, BlockOp::PostAttnNorm]);
        assert!(norms / total < 0.08, "norm share {}", norms / total);
    }

    #[test]
    fn every_layer_pays_some_tdx_overhead() {
        let bare = trace(&CpuTeeConfig::bare_metal());
        let tdx = trace(&CpuTeeConfig::tdx());
        for (b, t) in bare.iter().zip(&tdx) {
            assert!(
                t.time_s >= b.time_s,
                "{}: TDX faster than bare?",
                b.op.label()
            );
        }
    }

    #[test]
    fn table_covers_all_block_ops() {
        assert_eq!(super::run().rows.len(), BlockOp::all().len());
    }

    #[test]
    fn norms_have_largest_relative_overhead() {
        // Figure 7: "The most significant overheads are incurred in input
        // and post-attention layer norms" — despite their tiny time share.
        let bare = trace(&CpuTeeConfig::bare_metal());
        let tdx = trace(&CpuTeeConfig::tdx());
        let rel = |op: BlockOp| {
            let b = bare.iter().find(|t| t.op == op).unwrap().time_s;
            let t = tdx.iter().find(|t| t.op == op).unwrap().time_s;
            t / b - 1.0
        };
        let norm_ovh = rel(BlockOp::InputNorm);
        for gemm in [BlockOp::QkvProj, BlockOp::GateUpSilu, BlockOp::DownProj] {
            assert!(
                norm_ovh > 2.0 * rel(gemm),
                "norm {norm_ovh} !>> {:?} {}",
                gemm,
                rel(gemm)
            );
        }
    }
}
