//! AMD SEV-SNP cross-check (Section III: "AMD's TEE stack relies on
//! similar security mechanisms to Intel's TDX, resulting in close
//! benchmark overheads \[55\]").
//!
//! We run the same Llama2-7B shapes on a Genoa host under SEV-SNP and
//! compare against TDX on EMR1 — each relative to its own bare metal.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, CpuScenario, Sweep};
use cllm_hw::DType;
use cllm_perf::{CpuTarget, Framework};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;

fn genoa_target() -> CpuTarget {
    let cpu = cllm_hw::presets::genoa();
    CpuTarget {
        cores_per_socket: cpu.cores_per_socket,
        cpu,
        topology: cllm_hw::NumaTopology::single_socket(),
        amx_enabled: false, // AMD has no AMX — AVX-512 path
        framework: Framework::Vllm,
    }
}

/// SEV-SNP overhead on Genoa (vs Genoa bare metal).
#[must_use]
pub fn sev_overhead(dtype: DType, batch: u64) -> f64 {
    CpuScenario::llama2_7b(RequestSpec::new(batch, 1024, 128))
        .with_dtype(dtype)
        .with_target(genoa_target())
        .with_tee(CpuTeeConfig::sev_snp())
        .thr_overhead()
}

/// TDX overhead on EMR1 (vs EMR1 bare metal), same shape.
#[must_use]
pub fn tdx_overhead(dtype: DType, batch: u64) -> f64 {
    CpuScenario::llama2_7b(RequestSpec::new(batch, 1024, 128))
        .with_dtype(dtype)
        .with_target(CpuTarget::emr1_single_socket())
        .thr_overhead()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "sev_snp",
        "SEV-SNP (Genoa) vs TDX (EMR1) throughput overheads, Llama2-7B",
        vec![
            Column::str("dtype"),
            Column::int("batch"),
            Column::pct("sev_snp_overhead"),
            Column::pct("tdx_overhead"),
            Column::float("gap_pts", Unit::Points, 1),
        ],
    );
    let sweep = Sweep::over(grid2(&[DType::Bf16, DType::Int8], &[1u64, 6, 32]));
    r.extend_rows(sweep.rows(|&(dtype, batch)| {
        let sev = sev_overhead(dtype, batch);
        let tdx = tdx_overhead(dtype, batch);
        vec![
            Value::str(dtype.label()),
            Value::uint(batch),
            Value::pct(sev),
            Value::pct(tdx),
            Value::float(sev - tdx, Unit::Points, 1),
        ]
    }));
    r.note("paper: AMD's TEE stack relies on similar mechanisms to TDX, resulting in close benchmark overheads (Misono et al.)");
    r.note("SEV-SNP honours 1G hugepage reservations, trading away TDX's THP fallback cost but keeping the RMP-walk latency");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_workload::zoo;

    #[test]
    fn sev_close_to_tdx() {
        for dtype in [DType::Bf16, DType::Int8] {
            let gap = (sev_overhead(dtype, 6) - tdx_overhead(dtype, 6)).abs();
            assert!(gap < 4.0, "{dtype:?}: SEV/TDX gap {gap} points");
        }
    }

    #[test]
    fn sev_overhead_in_vm_tee_band() {
        let o = sev_overhead(DType::Bf16, 6);
        assert!((3.0..11.0).contains(&o), "SEV-SNP overhead {o}%");
    }

    #[test]
    fn sev_is_confidential_and_costs_more_than_raw_vm() {
        let base = CpuScenario::llama2_7b(RequestSpec::new(6, 1024, 64))
            .with_model(zoo::llama2_7b())
            .with_target(genoa_target());
        let vm = base.clone().with_tee(CpuTeeConfig::vm()).simulate();
        let sev = base.with_tee(CpuTeeConfig::sev_snp()).simulate();
        assert!(sev.summary.mean > vm.summary.mean);
    }
}
