//! AMD SEV-SNP cross-check (Section III: "AMD's TEE stack relies on
//! similar security mechanisms to Intel's TDX, resulting in close
//! benchmark overheads [55]").
//!
//! We run the same Llama2-7B shapes on a Genoa host under SEV-SNP and
//! compare against TDX on EMR1 — each relative to its own bare metal.

use super::{num, pct, ExperimentResult};
use cllm_hw::DType;
use cllm_perf::{simulate_cpu, throughput_overhead_pct, CpuTarget, Framework};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;

fn genoa_target() -> CpuTarget {
    let cpu = cllm_hw::presets::genoa();
    CpuTarget {
        cores_per_socket: cpu.cores_per_socket,
        cpu,
        topology: cllm_hw::NumaTopology::single_socket(),
        amx_enabled: false, // AMD has no AMX — AVX-512 path
        framework: Framework::Vllm,
    }
}

/// SEV-SNP overhead on Genoa (vs Genoa bare metal).
#[must_use]
pub fn sev_overhead(dtype: DType, batch: u64) -> f64 {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(batch, 1024, 128);
    let target = genoa_target();
    let bare = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::bare_metal());
    let sev = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::sev_snp());
    throughput_overhead_pct(bare.decode_tps, sev.decode_tps)
}

/// TDX overhead on EMR1 (vs EMR1 bare metal), same shape.
#[must_use]
pub fn tdx_overhead(dtype: DType, batch: u64) -> f64 {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(batch, 1024, 128);
    let target = CpuTarget::emr1_single_socket();
    let bare = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::bare_metal());
    let tdx = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::tdx());
    throughput_overhead_pct(bare.decode_tps, tdx.decode_tps)
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "sev_snp",
        "SEV-SNP (Genoa) vs TDX (EMR1) throughput overheads, Llama2-7B",
        &[
            "dtype",
            "batch",
            "sev_snp_overhead",
            "tdx_overhead",
            "gap_pts",
        ],
    );
    for dtype in [DType::Bf16, DType::Int8] {
        for batch in [1u64, 6, 32] {
            let sev = sev_overhead(dtype, batch);
            let tdx = tdx_overhead(dtype, batch);
            r.push_row(vec![
                dtype.label().to_owned(),
                batch.to_string(),
                pct(sev),
                pct(tdx),
                num(sev - tdx, 1),
            ]);
        }
    }
    r.note("paper: AMD's TEE stack relies on similar mechanisms to TDX, resulting in close benchmark overheads (Misono et al.)");
    r.note("SEV-SNP honours 1G hugepage reservations, trading away TDX's THP fallback cost but keeping the RMP-walk latency");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sev_close_to_tdx() {
        for dtype in [DType::Bf16, DType::Int8] {
            let gap = (sev_overhead(dtype, 6) - tdx_overhead(dtype, 6)).abs();
            assert!(gap < 4.0, "{dtype:?}: SEV/TDX gap {gap} points");
        }
    }

    #[test]
    fn sev_overhead_in_vm_tee_band() {
        let o = sev_overhead(DType::Bf16, 6);
        assert!((3.0..11.0).contains(&o), "SEV-SNP overhead {o}%");
    }

    #[test]
    fn sev_is_confidential_and_costs_more_than_raw_vm() {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(6, 1024, 64);
        let target = genoa_target();
        let vm = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::vm());
        let sev = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::sev_snp());
        assert!(sev.summary.mean > vm.summary.mean);
    }
}
