//! Figure 8: AMX versus no-AMX across batch sizes (EMR2, Llama2-7B,
//! 128 in / 128 out). Overheads are reported relative to a VM running
//! AMX, exactly as the paper plots them. Latency is measured on two
//! sockets, throughput on one — and the two-socket latency overheads vs
//! bare metal are published as columns so Insight 8 asserts over the
//! same cached points the figure prints.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, CpuScenario, Sweep};
use cllm_hw::DType;
use cllm_perf::{overhead_pct, CpuTarget};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;

fn thr_scenario(dtype: DType, batch: u64, amx: bool, tee: &CpuTeeConfig) -> CpuScenario {
    CpuScenario::llama2_7b(RequestSpec::new(batch, 128, 128))
        .with_dtype(dtype)
        .with_target(CpuTarget::emr2_single_socket().with_amx(amx))
        .with_tee(tee.clone())
}

fn thr_tps(dtype: DType, batch: u64, amx: bool, tee: &CpuTeeConfig) -> f64 {
    thr_scenario(dtype, batch, amx, tee).simulate().decode_tps
}

fn lat_scenario(dtype: DType, batch: u64, amx: bool, tee: &CpuTeeConfig) -> CpuScenario {
    CpuScenario::llama2_7b(RequestSpec::new(batch, 128, 128))
        .with_dtype(dtype)
        .with_target(CpuTarget::emr2_dual_socket().with_amx(amx))
        .with_tee(tee.clone())
}

fn lat_s(dtype: DType, batch: u64, amx: bool, tee: &CpuTeeConfig) -> f64 {
    lat_scenario(dtype, batch, amx, tee).simulate().summary.mean
}

/// Two-socket TDX next-token-latency overhead vs bare metal at the same
/// AMX setting, percent (the figure's latency panel; Insight 8 compares
/// the AMX-on and AMX-off values).
#[must_use]
pub fn lat_overhead(dtype: DType, batch: u64, amx: bool) -> f64 {
    overhead_pct(
        lat_s(dtype, batch, amx, &CpuTeeConfig::bare_metal()),
        lat_s(dtype, batch, amx, &CpuTeeConfig::tdx()),
    )
}

const BATCHES: [u64; 5] = [1, 4, 16, 64, 256];

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig8",
        "AMX vs no-AMX batch scaling, overheads relative to VM+AMX (EMR2)",
        vec![
            Column::str("dtype"),
            Column::int("batch"),
            Column::float("amx_speedup", Unit::Speedup, 2),
            Column::pct("tdx_amx_vs_vm_amx"),
            Column::pct("tdx_noamx_vs_vm_amx"),
            Column::pct("lat_ovh_amx_2s"),
            Column::pct("lat_ovh_noamx_2s"),
        ],
    );
    let sweep = Sweep::over(grid2(&[DType::Bf16, DType::Int8], &BATCHES));
    r.extend_rows(sweep.rows(|&(dtype, batch)| {
        let vm_amx = thr_tps(dtype, batch, true, &CpuTeeConfig::vm());
        let tdx_amx = thr_tps(dtype, batch, true, &CpuTeeConfig::tdx());
        let tdx_noamx = thr_tps(dtype, batch, false, &CpuTeeConfig::tdx());
        let bare_amx = thr_tps(dtype, batch, true, &CpuTeeConfig::bare_metal());
        let bare_noamx = thr_tps(dtype, batch, false, &CpuTeeConfig::bare_metal());
        vec![
            Value::str(dtype.label()),
            Value::uint(batch),
            Value::float(bare_amx / bare_noamx, Unit::Speedup, 2),
            Value::pct((vm_amx / tdx_amx - 1.0) * 100.0),
            Value::pct((vm_amx / tdx_noamx - 1.0) * 100.0),
            Value::pct(lat_overhead(dtype, batch, true)),
            Value::pct(lat_overhead(dtype, batch, false)),
        ]
    }));
    r.note("paper: bf16 AMX advantage grows from 1-4% to hundreds of percent with batch size");
    r.note("paper: int8 without AMX collapses (no AVX path in IPEX): up to 96% thr / 1700% lat overheads");
    r.note(format!(
        "int8 no-AMX latency blowup at batch 1 (2 sockets): {:.0}x",
        lat_s(DType::Int8, 1, false, &CpuTeeConfig::tdx())
            / lat_s(DType::Int8, 1, true, &CpuTeeConfig::tdx())
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amx_advantage_grows_with_batch() {
        let small = thr_tps(DType::Bf16, 1, true, &CpuTeeConfig::bare_metal())
            / thr_tps(DType::Bf16, 1, false, &CpuTeeConfig::bare_metal());
        let large = thr_tps(DType::Bf16, 256, true, &CpuTeeConfig::bare_metal())
            / thr_tps(DType::Bf16, 256, false, &CpuTeeConfig::bare_metal());
        assert!(
            small < 1.1,
            "batch-1 AMX advantage should be small: {small}"
        );
        assert!(large > 1.3, "large-batch AMX advantage: {large}");
    }

    #[test]
    fn amx_reduces_tdx_latency_overhead() {
        // Section IV-C: AMX lowers TDX overheads, most visibly in the
        // two-socket latency setup.
        let ovh_amx = lat_overhead(DType::Bf16, 1, true);
        let ovh_noamx = lat_overhead(DType::Bf16, 1, false);
        assert!(
            ovh_amx < ovh_noamx,
            "AMX overhead {ovh_amx}% !< no-AMX {ovh_noamx}%"
        );
    }

    #[test]
    fn int8_without_amx_collapses() {
        // Section IV-C: int8 without AMX has a catastrophic latency
        // penalty (paper: ~1700%).
        let amx = lat_s(DType::Int8, 1, true, &CpuTeeConfig::tdx());
        let noamx = lat_s(DType::Int8, 1, false, &CpuTeeConfig::tdx());
        let blowup = noamx / amx;
        assert!(blowup > 8.0, "int8 no-AMX blowup only {blowup}x");
    }

    #[test]
    fn ten_rows_rendered() {
        assert_eq!(super::run().rows.len(), 10);
    }
}
