//! Figure 8: AMX versus no-AMX across batch sizes (EMR2, Llama2-7B,
//! 128 in / 128 out). Overheads are reported relative to a VM running
//! AMX, exactly as the paper plots them. Latency is measured on two
//! sockets, throughput on one.

use super::{pct, ExperimentResult};
use cllm_hw::DType;
use cllm_perf::{simulate_cpu, CpuTarget};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;

fn thr_tps(dtype: DType, batch: u64, amx: bool, tee: &CpuTeeConfig) -> f64 {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(batch, 128, 128);
    let target = CpuTarget::emr2_single_socket().with_amx(amx);
    simulate_cpu(&model, &req, dtype, &target, tee).decode_tps
}

fn lat_s(dtype: DType, batch: u64, amx: bool, tee: &CpuTeeConfig) -> f64 {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(batch, 128, 128);
    let target = CpuTarget::emr2_dual_socket().with_amx(amx);
    simulate_cpu(&model, &req, dtype, &target, tee).summary.mean
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig8",
        "AMX vs no-AMX batch scaling, overheads relative to VM+AMX (EMR2)",
        &[
            "dtype",
            "batch",
            "amx_speedup",
            "tdx_amx_vs_vm_amx",
            "tdx_noamx_vs_vm_amx",
        ],
    );
    for dtype in [DType::Bf16, DType::Int8] {
        for batch in [1u64, 4, 16, 64, 256] {
            let vm_amx = thr_tps(dtype, batch, true, &CpuTeeConfig::vm());
            let tdx_amx = thr_tps(dtype, batch, true, &CpuTeeConfig::tdx());
            let tdx_noamx = thr_tps(dtype, batch, false, &CpuTeeConfig::tdx());
            let bare_amx = thr_tps(dtype, batch, true, &CpuTeeConfig::bare_metal());
            let bare_noamx = thr_tps(dtype, batch, false, &CpuTeeConfig::bare_metal());
            r.push_row(vec![
                dtype.label().to_owned(),
                batch.to_string(),
                format!("{:.2}x", bare_amx / bare_noamx),
                pct((vm_amx / tdx_amx - 1.0) * 100.0),
                pct((vm_amx / tdx_noamx - 1.0) * 100.0),
            ]);
        }
    }
    r.note("paper: bf16 AMX advantage grows from 1-4% to hundreds of percent with batch size");
    r.note("paper: int8 without AMX collapses (no AVX path in IPEX): up to 96% thr / 1700% lat overheads");
    r.note(format!(
        "int8 no-AMX latency blowup at batch 1 (2 sockets): {:.0}x",
        lat_s(DType::Int8, 1, false, &CpuTeeConfig::tdx())
            / lat_s(DType::Int8, 1, true, &CpuTeeConfig::tdx())
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amx_advantage_grows_with_batch() {
        let small = thr_tps(DType::Bf16, 1, true, &CpuTeeConfig::bare_metal())
            / thr_tps(DType::Bf16, 1, false, &CpuTeeConfig::bare_metal());
        let large = thr_tps(DType::Bf16, 256, true, &CpuTeeConfig::bare_metal())
            / thr_tps(DType::Bf16, 256, false, &CpuTeeConfig::bare_metal());
        assert!(
            small < 1.1,
            "batch-1 AMX advantage should be small: {small}"
        );
        assert!(large > 1.3, "large-batch AMX advantage: {large}");
    }

    #[test]
    fn amx_reduces_tdx_latency_overhead() {
        // Section IV-C: AMX lowers TDX overheads, most visibly in the
        // two-socket latency setup.
        let bare_amx = lat_s(DType::Bf16, 1, true, &CpuTeeConfig::bare_metal());
        let tdx_amx = lat_s(DType::Bf16, 1, true, &CpuTeeConfig::tdx());
        let bare_noamx = lat_s(DType::Bf16, 1, false, &CpuTeeConfig::bare_metal());
        let tdx_noamx = lat_s(DType::Bf16, 1, false, &CpuTeeConfig::tdx());
        let ovh_amx = tdx_amx / bare_amx - 1.0;
        let ovh_noamx = tdx_noamx / bare_noamx - 1.0;
        assert!(
            ovh_amx < ovh_noamx,
            "AMX overhead {ovh_amx} !< no-AMX {ovh_noamx}"
        );
    }

    #[test]
    fn int8_without_amx_collapses() {
        // Section IV-C: int8 without AMX has a catastrophic latency
        // penalty (paper: ~1700%).
        let amx = lat_s(DType::Int8, 1, true, &CpuTeeConfig::tdx());
        let noamx = lat_s(DType::Int8, 1, false, &CpuTeeConfig::tdx());
        let blowup = noamx / amx;
        assert!(blowup > 8.0, "int8 no-AMX blowup only {blowup}x");
    }

    #[test]
    fn ten_rows_rendered() {
        assert_eq!(super::run().rows.len(), 10);
    }
}
