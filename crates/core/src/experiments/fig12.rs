//! Figure 12: vCPU scaling and cost of generating one million tokens
//! (EMR2, Llama2-7B bf16, 128 in / 128 out, single socket, 128 GiB of
//! memory held constant), with the cGPU cost line.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, CpuScenario, GpuScenario, Sweep};
use cllm_cost::{cost_per_mtok, CostPoint, CpuPricing, GpuPricing};
use cllm_perf::CpuTarget;
use cllm_workload::phase::RequestSpec;

/// Hyperthreads billed per physical core (GCP bills vCPUs).
pub const VCPUS_PER_CORE: u32 = 2;

/// Memory held constant across the sweep, GiB (the paper found 128 GiB
/// sufficient for Llama2-7B in all shown cases).
pub const MEMORY_GIB: f64 = 128.0;

/// Core counts swept (per socket).
pub const CORES: [u32; 6] = [4, 8, 16, 32, 48, 60];

fn scenario(cores: u32, batch: u64) -> CpuScenario {
    CpuScenario::llama2_7b(RequestSpec::new(batch, 128, 128))
        .with_target(CpuTarget::emr2_single_socket().with_cores(cores))
}

/// TDX generation throughput at a core count and batch size (e2e,
/// includes first-token latency, as the figure caption specifies).
#[must_use]
pub fn tdx_e2e_tps(cores: u32, batch: u64) -> f64 {
    scenario(cores, batch).simulate().e2e_tps
}

fn bare_e2e_tps(cores: u32, batch: u64) -> f64 {
    scenario(cores, batch).baseline().simulate().e2e_tps
}

fn tdx_overhead(cores: u32, batch: u64) -> f64 {
    cllm_perf::throughput_overhead_pct(bare_e2e_tps(cores, batch), tdx_e2e_tps(cores, batch))
}

/// cGPU $/Mtoken at a batch size (the orange line of Figure 12).
#[must_use]
pub fn cgpu_usd_per_mtok(batch: u64) -> f64 {
    let sim = GpuScenario::llama2_7b(RequestSpec::new(batch, 128, 128)).simulate();
    cost_per_mtok(GpuPricing::azure_ncc_h100().per_hr, sim.e2e_tps)
}

/// The TDX cost sweep over core counts at one batch size.
#[must_use]
pub fn tdx_cost_sweep(batch: u64) -> Vec<CostPoint> {
    let pricing = CpuPricing::gcp_spot_us_east1();
    CORES
        .iter()
        .map(|&cores| {
            let price = pricing.instance_cost_per_hr(cores * VCPUS_PER_CORE, MEMORY_GIB);
            CostPoint::new(u64::from(cores), tdx_e2e_tps(cores, batch), price)
        })
        .collect()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig12",
        "vCPU scaling and $/Mtoken, Llama2-7B bf16 on EMR2 vs confidential H100",
        vec![
            Column::int("batch"),
            Column::int("cores"),
            Column::float("tdx_tps", Unit::TokensPerSec, 0),
            Column::pct("tdx_overhead"),
            Column::float("usd_per_mtok", Unit::UsdPerMtok, 3),
            Column::float("cgpu_usd_per_mtok", Unit::UsdPerMtok, 3),
        ],
    );
    let pricing = CpuPricing::gcp_spot_us_east1();
    let sweep = Sweep::over(grid2(&[1u64, 16, 64, 128], &CORES));
    r.extend_rows(sweep.rows(|&(batch, cores)| {
        let tps = tdx_e2e_tps(cores, batch);
        let price = pricing.instance_cost_per_hr(cores * VCPUS_PER_CORE, MEMORY_GIB);
        vec![
            Value::uint(batch),
            Value::int(i64::from(cores)),
            Value::float(tps, Unit::TokensPerSec, 0),
            Value::pct(tdx_overhead(cores, batch)),
            Value::float(cost_per_mtok(price, tps), Unit::UsdPerMtok, 3),
            Value::float(cgpu_usd_per_mtok(batch), Unit::UsdPerMtok, 3),
        ]
    }));
    r.note("paper: workload is compute-bound until ~32 cores, then memory-bound");
    r.note("paper: cGPUs are up to 100% more expensive at small batch; parity near batch 128");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_cost::{cheapest_point, cost_advantage_pct};

    #[test]
    fn throughput_knee_near_32_cores() {
        // Figure 12: minimal gain above ~32 cores.
        let t16 = tdx_e2e_tps(16, 64);
        let t32 = tdx_e2e_tps(32, 64);
        let t60 = tdx_e2e_tps(60, 64);
        assert!(t32 > 1.05 * t16, "still scaling into 32 cores");
        assert!(t60 < 1.15 * t32, "should flatten past 32 cores");
    }

    #[test]
    fn cost_curve_is_u_shaped() {
        // Memory dominates at low cores; throughput plateau raises cost at
        // high cores -> the cheapest point is interior.
        let sweep = tdx_cost_sweep(64);
        let best = cheapest_point(&sweep).unwrap();
        assert!(
            best.x > CORES[0].into() && best.x <= 48,
            "valley at {} cores",
            best.x
        );
    }

    #[test]
    fn cpu_advantage_fades_with_batch() {
        // Paper: CPU TEEs up to ~100% cheaper at batch 1; parity around
        // batch 128.
        let adv = |batch| {
            let cpu_best = cheapest_point(&tdx_cost_sweep(batch)).unwrap().usd_per_mtok;
            cost_advantage_pct(cpu_best, cgpu_usd_per_mtok(batch))
        };
        let b1 = adv(1);
        let b64 = adv(64);
        let b128 = adv(128);
        assert!(b1 > 40.0, "batch-1 CPU advantage only {b1}%");
        assert!(b1 < 220.0, "batch-1 CPU advantage implausibly high: {b1}%");
        assert!(b64 < b1, "advantage must fade: b64 {b64} !< b1 {b1}");
        assert!(
            b128 < 35.0,
            "near-parity expected at batch 128, got {b128}%"
        );
        assert!(b128 < b64);
    }

    #[test]
    fn overheads_moderate_across_core_counts() {
        for cores in CORES {
            let ovh = tdx_overhead(cores, 64);
            assert!((2.0..14.0).contains(&ovh), "{cores} cores: {ovh}%");
        }
    }
}
