//! Figure 9: batch-size scaling of TDX overheads (EMR2, Llama2-7B,
//! 128 in / 128 out; latency on two sockets, throughput on one).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, CpuScenario, Sweep};
use cllm_hw::DType;
use cllm_perf::CpuTarget;
use cllm_workload::phase::RequestSpec;

fn thr_scenario(dtype: DType, batch: u64) -> CpuScenario {
    CpuScenario::llama2_7b(RequestSpec::new(batch, 128, 128)).with_dtype(dtype)
}

/// Throughput overhead of TDX vs bare metal at one batch size. The
/// bare-metal point is shared with [`bare_tps`] through the simulation
/// cache instead of being simulated a second time.
#[must_use]
pub fn thr_overhead(dtype: DType, batch: u64) -> f64 {
    thr_scenario(dtype, batch).thr_overhead()
}

/// Bare-metal throughput at one batch size (for the saturation check).
#[must_use]
pub fn bare_tps(dtype: DType, batch: u64) -> f64 {
    thr_scenario(dtype, batch).baseline().simulate().decode_tps
}

fn lat_overhead(dtype: DType, batch: u64) -> f64 {
    thr_scenario(dtype, batch)
        .with_target(CpuTarget::emr2_dual_socket())
        .lat_overhead()
}

const BATCHES: [u64; 7] = [1, 4, 16, 64, 128, 256, 512];

/// Run the experiment. Grid points evaluate on the runner's worker pool;
/// row order stays identical to the sequential dtype-major sweep.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig9",
        "Batch-size scaling of TDX overheads, Llama2-7B on EMR2",
        vec![
            Column::str("dtype"),
            Column::int("batch"),
            Column::float("bare_tps", Unit::TokensPerSec, 0),
            Column::pct("thr_overhead"),
            Column::pct("lat_overhead_2s"),
        ],
    );
    let sweep = Sweep::over(grid2(&[DType::Bf16, DType::Int8], &BATCHES));
    r.extend_rows(sweep.rows(|&(dtype, batch)| {
        vec![
            Value::str(dtype.label()),
            Value::uint(batch),
            Value::float(bare_tps(dtype, batch), Unit::TokensPerSec, 0),
            Value::pct(thr_overhead(dtype, batch)),
            Value::pct(lat_overhead(dtype, batch)),
        ]
    }));
    r.note("paper: overheads drop as batch grows (more arithmetic intensity, Insight 9)");
    r.note("paper: int8 saturates throughput near batch 64; bf16 near batch 512");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_decreases_with_batch() {
        for dtype in [DType::Bf16, DType::Int8] {
            let small = thr_overhead(dtype, 1);
            let large = thr_overhead(dtype, 256);
            assert!(
                small > large + 2.0,
                "{dtype:?}: {small}% at b1 !>> {large}% at b256"
            );
        }
    }

    #[test]
    fn small_batch_overhead_band() {
        // Paper: 7-10% (bf16) / 9-11% (int8) before saturation.
        for dtype in [DType::Bf16, DType::Int8] {
            let o = thr_overhead(dtype, 4);
            assert!((6.0..13.0).contains(&o), "{dtype:?} b4: {o}%");
        }
    }

    #[test]
    fn saturated_overhead_band() {
        for dtype in [DType::Bf16, DType::Int8] {
            let o = thr_overhead(dtype, 512);
            assert!((3.0..9.0).contains(&o), "{dtype:?} b512: {o}%");
        }
    }

    #[test]
    fn throughput_saturates() {
        // bf16 throughput gains flatten at large batch (paper: ~512).
        let t256 = bare_tps(DType::Bf16, 256);
        let t512 = bare_tps(DType::Bf16, 512);
        assert!(t512 / t256 < 1.5, "still scaling hard: {}", t512 / t256);
        // And it is far above batch-1 throughput.
        assert!(t512 > 10.0 * bare_tps(DType::Bf16, 1));
    }

    #[test]
    fn int8_saturates_before_bf16() {
        // Paper: int8 saturates near batch 64, bf16 near 512 — so int8's
        // relative gain from 64 to 512 is smaller than bf16's.
        let int8_gain = bare_tps(DType::Int8, 512) / bare_tps(DType::Int8, 64);
        let bf16_gain = bare_tps(DType::Bf16, 512) / bare_tps(DType::Bf16, 64);
        assert!(
            int8_gain < bf16_gain,
            "int8 gain {int8_gain} !< bf16 gain {bf16_gain}"
        );
    }
}
