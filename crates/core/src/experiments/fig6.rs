//! Figure 6: dual-socket hugepage configurations — VM with reserved
//! 1 GiB pages (`VM FH`), VM with transparent 2 MiB pages (`VM TH`) and
//! TDX (which silently falls back to 2 MiB THP, Insight 7).

use super::{Column, ExperimentResult, Value};
use crate::scenario::CpuScenario;
use cllm_perf::CpuTarget;
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;

fn scenarios(tee: &CpuTeeConfig) -> (CpuScenario, CpuScenario) {
    let thr = CpuScenario::llama2_7b(RequestSpec::new(6, 1024, 128).with_beam(4))
        .with_target(CpuTarget::emr1_dual_socket())
        .with_tee(tee.clone());
    let lat = thr.clone().with_req(RequestSpec::new(1, 1024, 128));
    (thr, lat)
}

/// Throughput and latency overhead (vs dual-socket bare metal) for one
/// config.
#[must_use]
pub fn overheads(tee: &CpuTeeConfig) -> (f64, f64) {
    let (thr, lat) = scenarios(tee);
    (thr.thr_overhead(), lat.lat_overhead())
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig6",
        "Dual-socket hugepage configurations, Llama2-7B on EMR1",
        vec![
            Column::str("config"),
            Column::pct("thr_overhead"),
            Column::pct("lat_overhead"),
        ],
    );
    for (name, tee) in [
        ("VM FH", CpuTeeConfig::vm()),
        ("VM TH", CpuTeeConfig::vm_thp()),
        ("TDX", CpuTeeConfig::tdx()),
        ("SGX", CpuTeeConfig::sgx()),
    ] {
        let (t, l) = overheads(&tee);
        r.push_row(vec![Value::str(name), Value::pct(t), Value::pct(l)]);
    }
    r.note("paper: dual-socket TDX overhead 12.11-23.81%; TDX over VM TH stays 4-10%");
    r.note("paper: VM TH over VM FH quantifies missing 1G pages at 3.19-5.20%");
    r.note("paper: SGX dual-socket becomes prohibitive, up to 230% (single NUMA node)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdx_dual_socket_band() {
        let (t, l) = overheads(&CpuTeeConfig::tdx());
        assert!((11.0..26.0).contains(&t), "TDX thr overhead {t}%");
        assert!((11.0..32.0).contains(&l), "TDX lat overhead {l}%");
    }

    #[test]
    fn thp_tax_band() {
        // VM TH minus VM FH ~ the cost of missing 1 GiB pages.
        let (fh, _) = overheads(&CpuTeeConfig::vm());
        let (th, _) = overheads(&CpuTeeConfig::vm_thp());
        let gap = th - fh;
        assert!((2.0..6.5).contains(&gap), "THP gap {gap}%");
    }

    #[test]
    fn sgx_collapses_on_two_sockets() {
        let (t, _) = overheads(&CpuTeeConfig::sgx());
        assert!((120.0..320.0).contains(&t), "SGX dual-socket {t}%");
    }

    #[test]
    fn tdx_over_vm_th_stays_moderate() {
        let (th, _) = overheads(&CpuTeeConfig::vm_thp());
        let (tdx, _) = overheads(&CpuTeeConfig::tdx());
        let gap = tdx - th;
        assert!((3.0..18.0).contains(&gap), "TDX-over-VM-TH gap {gap}%");
    }
}
