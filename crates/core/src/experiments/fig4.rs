//! Figure 4: single-socket throughput and latency overheads of SGX, VM
//! and TDX on EMR1 for bf16 and int8 (1024 in / 128 out; throughput at
//! batch 6 / beam 4, latency at batch 1 / beam 1).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::CpuScenario;
use cllm_hw::DType;
use cllm_perf::CpuTarget;
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;

/// One platform/dtype measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Point {
    /// Throughput overhead vs bare metal, percent.
    pub thr_overhead_pct: f64,
    /// Latency overhead vs bare metal, percent.
    pub lat_overhead_pct: f64,
    /// Absolute throughput, tokens/s.
    pub throughput_tps: f64,
    /// Absolute next-token latency, milliseconds.
    pub latency_ms: f64,
}

/// Compute the Figure 4 point for one TEE and dtype. Both request shapes
/// evaluate through the simulation cache, so Table I and the insight
/// checks re-reading these points share the figure's simulations.
#[must_use]
pub fn point(tee: &CpuTeeConfig, dtype: DType) -> Fig4Point {
    let thr = CpuScenario::llama2_7b(RequestSpec::new(6, 1024, 128).with_beam(4))
        .with_dtype(dtype)
        .with_target(CpuTarget::emr1_single_socket())
        .with_tee(tee.clone());
    let lat = thr.clone().with_req(RequestSpec::new(1, 1024, 128));

    Fig4Point {
        thr_overhead_pct: thr.thr_overhead(),
        lat_overhead_pct: lat.lat_overhead(),
        throughput_tps: thr.simulate().decode_tps,
        latency_ms: lat.simulate().summary.mean * 1e3,
    }
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig4",
        "Single-socket TEE overheads, Llama2-7B on EMR1",
        vec![
            Column::str("platform"),
            Column::str("dtype"),
            Column::pct("thr_overhead"),
            Column::pct("lat_overhead"),
            Column::float("throughput_tps", Unit::TokensPerSec, 1),
            Column::float("latency_ms", Unit::Millis, 1),
        ],
    );
    for dtype in [DType::Bf16, DType::Int8] {
        for tee in [CpuTeeConfig::vm(), CpuTeeConfig::sgx(), CpuTeeConfig::tdx()] {
            let p = point(&tee, dtype);
            r.push_row(vec![
                Value::str(tee.kind.label()),
                Value::str(dtype.label()),
                Value::pct(p.thr_overhead_pct),
                Value::pct(p.lat_overhead_pct),
                Value::float(p.throughput_tps, Unit::TokensPerSec, 1),
                Value::float(p.latency_ms, Unit::Millis, 1),
            ]);
        }
    }
    r.note("paper: SGX 4.80-6.15%, TDX 5.51-10.68%, VM 1.82-5.38% (throughput)");
    r.note("paper: int8 has similar throughput to bf16 but roughly half the latency");
    r.note("paper: all latencies well below the 200 ms/word reading-speed standard");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bands_hold() {
        for dtype in [DType::Bf16, DType::Int8] {
            let vm = point(&CpuTeeConfig::vm(), dtype);
            let sgx = point(&CpuTeeConfig::sgx(), dtype);
            let tdx = point(&CpuTeeConfig::tdx(), dtype);
            assert!(
                (1.0..5.5).contains(&vm.thr_overhead_pct),
                "VM {dtype:?}: {}",
                vm.thr_overhead_pct
            );
            assert!(
                (4.0..7.0).contains(&sgx.thr_overhead_pct),
                "SGX {dtype:?}: {}",
                sgx.thr_overhead_pct
            );
            assert!(
                (5.0..11.0).contains(&tdx.thr_overhead_pct),
                "TDX {dtype:?}: {}",
                tdx.thr_overhead_pct
            );
            // Latency overheads stay under the abstract's 20% bound.
            assert!(sgx.lat_overhead_pct < 20.0);
            assert!(tdx.lat_overhead_pct < 20.0);
            // SGX sits between VM and TDX (Insight 5).
            assert!(sgx.thr_overhead_pct > vm.thr_overhead_pct);
            assert!(sgx.thr_overhead_pct < tdx.thr_overhead_pct);
        }
    }

    #[test]
    fn int8_halves_latency() {
        let bf16 = point(&CpuTeeConfig::tdx(), DType::Bf16);
        let int8 = point(&CpuTeeConfig::tdx(), DType::Int8);
        let ratio = bf16.latency_ms / int8.latency_ms;
        assert!((1.5..2.5).contains(&ratio), "latency ratio {ratio}");
    }

    #[test]
    fn latencies_below_reading_speed() {
        for dtype in [DType::Bf16, DType::Int8] {
            for tee in [CpuTeeConfig::vm(), CpuTeeConfig::sgx(), CpuTeeConfig::tdx()] {
                assert!(point(&tee, dtype).latency_ms < 200.0);
            }
        }
    }
}
