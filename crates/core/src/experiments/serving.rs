//! Online-serving extension: the paper reports offline throughput and
//! latency; this experiment shows what its TEE overheads mean for
//! *user-perceived* service levels under load — continuous batching,
//! Poisson arrivals, TTFT/TPOT tails and SLO attainment against the
//! 200 ms/word reading-speed standard the paper cites.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, Sweep};
use cllm_serve::sim::{simulate_serving, ServingConfig};
use cllm_serve::slo::Slo;
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::CpuTeeConfig;

fn config(rate: f64) -> ServingConfig {
    ServingConfig {
        arrivals: ArrivalProcess::chat(rate, 42),
        duration_s: 60.0,
        ..ServingConfig::small_test()
    }
}

/// SLO attainment for one platform at one arrival rate.
#[must_use]
pub fn attainment(tee: &CpuTeeConfig, rate: f64) -> f64 {
    simulate_serving(&config(rate), tee).slo_attainment(Slo::interactive())
}

/// Span trace of the experiment's full grid: one lane per
/// (rate, platform) cell, in the table's row order. Lanes run through
/// the runner's worker pool; [`cllm_obs::Trace::merge`] assigns lane
/// ids by input order, so the bytes are thread-count independent.
#[must_use]
pub fn trace() -> cllm_obs::Trace {
    use cllm_serve::faults::FaultPlan;
    use cllm_serve::sim::{simulate_serving_traced, ServingNode};
    use cllm_tee::platform::TeeKind;
    let tees = [TeeKind::BareMetal, TeeKind::Tdx, TeeKind::Sgx];
    let cells = grid2(&[0.5f64, 1.5, 3.0], &tees);
    let lanes = crate::runner::par_map(&cells, crate::runner::grid_workers(), |&(rate, kind)| {
        let tee = match kind {
            TeeKind::Tdx => CpuTeeConfig::tdx(),
            TeeKind::Sgx => CpuTeeConfig::sgx(),
            _ => CpuTeeConfig::bare_metal(),
        };
        let node = ServingNode::Cpu { tee };
        simulate_serving_traced(&config(rate), &node, &FaultPlan::none()).1
    });
    cllm_obs::Trace::merge(lanes)
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "serving",
        "Online serving under TEEs: continuous batching, Llama2-7B on EMR2",
        vec![
            Column::str("platform"),
            Column::float("rate_rps", Unit::None, 1),
            Column::float("goodput_tps", Unit::TokensPerSec, 1),
            Column::float("ttft_p95_s", Unit::Seconds, 2),
            Column::float("tpot_p95_ms", Unit::Millis, 0),
            Column::pct("slo_attainment"),
        ],
    );
    use cllm_tee::platform::TeeKind;
    let tees = [TeeKind::BareMetal, TeeKind::Tdx, TeeKind::Sgx];
    let sweep = Sweep::over(grid2(&[0.5f64, 1.5, 3.0], &tees));
    r.extend_rows(sweep.rows(|&(rate, kind)| {
        let tee = match kind {
            TeeKind::Tdx => CpuTeeConfig::tdx(),
            TeeKind::Sgx => CpuTeeConfig::sgx(),
            _ => CpuTeeConfig::bare_metal(),
        };
        let report = simulate_serving(&config(rate), &tee);
        vec![
            Value::str(tee.kind.label()),
            Value::float(rate, Unit::None, 1),
            Value::float(report.goodput_tps, Unit::TokensPerSec, 1),
            Value::float(report.ttft_p95_s, Unit::Seconds, 2),
            Value::float(report.tpot_p95_s * 1e3, Unit::Millis, 0),
            Value::pct(report.slo_attainment(Slo::interactive()) * 100.0),
        ]
    }));
    r.note("SLO: 2 s to first token and the paper's 200 ms/word reading-speed bound per token");
    r.note("extension beyond the paper: iteration-level (vLLM-style) scheduling over the calibrated TEE roofline");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tee_degrades_attainment_under_load() {
        // At a saturating rate, the 5-10% TEE tax compounds through the
        // queue and costs real SLO attainment.
        let bare = attainment(&CpuTeeConfig::bare_metal(), 3.0);
        let tdx = attainment(&CpuTeeConfig::tdx(), 3.0);
        assert!(tdx <= bare + 1e-9, "TDX {tdx} !<= bare {bare}");
    }

    #[test]
    fn light_load_meets_slo_on_all_platforms() {
        for tee in [
            CpuTeeConfig::bare_metal(),
            CpuTeeConfig::tdx(),
            CpuTeeConfig::sgx(),
        ] {
            let a = attainment(&tee, 0.5);
            assert!(a > 0.8, "{:?}: attainment {a}", tee.kind);
        }
    }

    #[test]
    fn heavy_load_degrades_everyone() {
        let light = attainment(&CpuTeeConfig::tdx(), 0.5);
        let heavy = attainment(&CpuTeeConfig::tdx(), 3.0);
        assert!(heavy < light);
    }
}
