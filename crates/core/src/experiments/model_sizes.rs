//! Model-size sweep: Llama2 7B, 13B and 70B under TDX, as the paper's
//! abstract promises ("full Llama2 inference pipelines (7B, 13B, 70B)").
//! 7B/13B run on one socket; 70B needs both (its weights exceed one
//! socket's memory — the Figure 5 setting).

use super::{num, pct, ExperimentResult};
use crate::runner;
use cllm_hw::DType;
use cllm_perf::{simulate_cpu_cached, throughput_overhead_pct, CpuTarget, SimResult};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::{zoo, ModelConfig};
use std::sync::Arc;

fn target_for(model: &ModelConfig) -> CpuTarget {
    // Loading a checkpoint transiently needs ~2x the weight bytes
    // (load + convert), which is what pushes 70B out of one socket's
    // 256 GiB in the paper's deployment.
    let weights = model.weight_bytes(DType::Bf16);
    let socket_mem = cllm_hw::presets::emr1().dram_capacity_bytes;
    if weights * 2.0 > socket_mem {
        CpuTarget::emr1_dual_socket()
    } else {
        CpuTarget::emr1_single_socket()
    }
}

fn sim(model: &ModelConfig, tee: &CpuTeeConfig) -> Arc<SimResult> {
    let req = RequestSpec::new(6, 1024, 64).with_beam(4);
    simulate_cpu_cached(model, &req, DType::Bf16, &target_for(model), tee)
}

/// TDX throughput overhead for one model size.
#[must_use]
pub fn overhead(model: &ModelConfig) -> f64 {
    let bare = sim(model, &CpuTeeConfig::bare_metal());
    let tdx = sim(model, &CpuTeeConfig::tdx());
    throughput_overhead_pct(bare.decode_tps, tdx.decode_tps)
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "model_sizes",
        "Llama2 size sweep under TDX (7B/13B one socket, 70B two sockets)",
        &[
            "model",
            "sockets",
            "tdx_tps",
            "tdx_latency_ms",
            "tdx_overhead",
        ],
    );
    let family = zoo::llama2_family();
    let rows = runner::par_map(&family, runner::grid_workers(), |model| {
        let tdx = sim(model, &CpuTeeConfig::tdx());
        vec![
            model.name.clone(),
            target_for(model).topology.sockets.to_string(),
            num(tdx.decode_tps, 2),
            num(tdx.summary.mean * 1e3, 0),
            pct(overhead(model)),
        ]
    });
    for row in rows {
        r.push_row(row);
    }
    r.note("paper: 7B/13B stay within the single-socket 4-10% band; 70B pays the multi-socket NUMA/interconnect penalty (Figure 5) and misses the 200 ms service level");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_in_single_socket_band() {
        for model in [zoo::llama2_7b(), zoo::llama2_13b()] {
            let o = overhead(&model);
            assert!((4.0..11.0).contains(&o), "{}: {o}%", model.name);
        }
    }

    #[test]
    fn seventy_b_pays_multi_socket_penalty() {
        let o = overhead(&zoo::llama2_70b());
        let small = overhead(&zoo::llama2_7b());
        assert!(o > small, "70B {o}% !> 7B {small}%");
        assert!((10.0..40.0).contains(&o), "70B overhead {o}%");
    }

    #[test]
    fn throughput_orders_by_size() {
        let t7 = sim(&zoo::llama2_7b(), &CpuTeeConfig::tdx()).decode_tps;
        let t13 = sim(&zoo::llama2_13b(), &CpuTeeConfig::tdx()).decode_tps;
        let t70 = sim(&zoo::llama2_70b(), &CpuTeeConfig::tdx()).decode_tps;
        assert!(t7 > t13);
        assert!(t13 > t70);
    }

    #[test]
    fn seventy_b_misses_service_level() {
        let lat = sim(&zoo::llama2_70b(), &CpuTeeConfig::tdx()).summary.mean;
        assert!(lat > 0.2, "70B latency {lat}s should exceed 200 ms");
    }
}
