//! Model-size sweep: Llama2 7B, 13B and 70B under TDX, as the paper's
//! abstract promises ("full Llama2 inference pipelines (7B, 13B, 70B)").
//! 7B/13B run on one socket; 70B needs both (its weights exceed one
//! socket's memory — the Figure 5 setting).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{CpuScenario, Sweep};
use cllm_hw::DType;
use cllm_perf::CpuTarget;
use cllm_workload::phase::RequestSpec;
use cllm_workload::{zoo, ModelConfig};

fn target_for(model: &ModelConfig) -> CpuTarget {
    // Loading a checkpoint transiently needs ~2x the weight bytes
    // (load + convert), which is what pushes 70B out of one socket's
    // 256 GiB in the paper's deployment.
    let weights = model.weight_bytes(DType::Bf16);
    let socket_mem = cllm_hw::presets::emr1().dram_capacity_bytes;
    if weights * 2.0 > socket_mem {
        CpuTarget::emr1_dual_socket()
    } else {
        CpuTarget::emr1_single_socket()
    }
}

fn scenario(model: &ModelConfig) -> CpuScenario {
    CpuScenario::llama2_7b(RequestSpec::new(6, 1024, 64).with_beam(4))
        .with_model(model.clone())
        .with_target(target_for(model))
}

/// TDX throughput overhead for one model size.
#[must_use]
pub fn overhead(model: &ModelConfig) -> f64 {
    scenario(model).thr_overhead()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "model_sizes",
        "Llama2 size sweep under TDX (7B/13B one socket, 70B two sockets)",
        vec![
            Column::str("model"),
            Column::int("sockets"),
            Column::float("tdx_tps", Unit::TokensPerSec, 2),
            Column::float("tdx_latency_ms", Unit::Millis, 0),
            Column::pct("tdx_overhead"),
        ],
    );
    r.extend_rows(Sweep::over(zoo::llama2_family()).rows(|model| {
        let tdx = scenario(model).simulate();
        vec![
            Value::str(model.name.clone()),
            Value::int(i64::from(target_for(model).topology.sockets)),
            Value::float(tdx.decode_tps, Unit::TokensPerSec, 2),
            Value::float(tdx.summary.mean * 1e3, Unit::Millis, 0),
            Value::pct(overhead(model)),
        ]
    }));
    r.note("paper: 7B/13B stay within the single-socket 4-10% band; 70B pays the multi-socket NUMA/interconnect penalty (Figure 5) and misses the 200 ms service level");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_in_single_socket_band() {
        for model in [zoo::llama2_7b(), zoo::llama2_13b()] {
            let o = overhead(&model);
            assert!((4.0..11.0).contains(&o), "{}: {o}%", model.name);
        }
    }

    #[test]
    fn seventy_b_pays_multi_socket_penalty() {
        let o = overhead(&zoo::llama2_70b());
        let small = overhead(&zoo::llama2_7b());
        assert!(o > small, "70B {o}% !> 7B {small}%");
        assert!((10.0..40.0).contains(&o), "70B overhead {o}%");
    }

    #[test]
    fn throughput_orders_by_size() {
        let t7 = scenario(&zoo::llama2_7b()).simulate().decode_tps;
        let t13 = scenario(&zoo::llama2_13b()).simulate().decode_tps;
        let t70 = scenario(&zoo::llama2_70b()).simulate().decode_tps;
        assert!(t7 > t13);
        assert!(t13 > t70);
    }

    #[test]
    fn seventy_b_misses_service_level() {
        let lat = scenario(&zoo::llama2_70b()).simulate().summary.mean;
        assert!(lat > 0.2, "70B latency {lat}s should exceed 200 ms");
    }
}
