//! Table I: the summary matrix of evaluated systems — security,
//! performance and cost characteristics per platform.

use super::{pct, Column, ExperimentResult, Value};
use cllm_tee::platform::TeeKind;
use cllm_tee::threat::{security_score, Attack};

/// Run the experiment (most cells come from `cllm_tee::threat`; the
/// performance rows cite the measured single-resource overheads from the
/// other experiments).
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "table1",
        "Summary of evaluated systems (Table I)",
        vec![
            Column::str("property"),
            Column::str("SGX (process TEE)"),
            Column::str("TDX (VM TEE)"),
            Column::str("H100 cGPU"),
        ],
    );

    let kinds = [TeeKind::Sgx, TeeKind::Tdx, TeeKind::GpuCc];
    let glyph = |k: TeeKind, a: Attack| Value::str(cllm_tee::threat::protection(k, a).glyph());

    for attack in Attack::all() {
        r.push_row(vec![
            Value::str(format!("security: {}", attack.description())),
            glyph(kinds[0], attack),
            glyph(kinds[1], attack),
            glyph(kinds[2], attack),
        ]);
    }
    r.push_row(vec![
        Value::str("security score"),
        Value::str(pct(security_score(TeeKind::Sgx) * 100.0)),
        Value::str(pct(security_score(TeeKind::Tdx) * 100.0)),
        Value::str(pct(security_score(TeeKind::GpuCc) * 100.0)),
    ]);

    // Performance rows measured by the other experiments (through the
    // shared simulation cache).
    let fig4_sgx = super::fig4::point(
        &cllm_tee::platform::CpuTeeConfig::sgx(),
        cllm_hw::DType::Bf16,
    );
    let fig4_tdx = super::fig4::point(
        &cllm_tee::platform::CpuTeeConfig::tdx(),
        cllm_hw::DType::Bf16,
    );
    let gpu = super::fig11::overhead(8, 512);
    r.push_row(vec![
        Value::str("single-resource overhead"),
        Value::str(pct(fig4_sgx.thr_overhead_pct)),
        Value::str(pct(fig4_tdx.thr_overhead_pct)),
        Value::str(pct(gpu)),
    ]);
    r.push_row(vec![
        Value::str("batch size up -> overhead"),
        Value::str("down"),
        Value::str("down"),
        Value::str("down"),
    ]);
    r.push_row(vec![
        Value::str("input size up -> overhead"),
        Value::str("down then up"),
        Value::str("down then up"),
        Value::str("down"),
    ]);
    r.push_row(vec![
        Value::str("scale-up (multi-socket / multi-GPU)"),
        Value::str("prohibitive (no NUMA)"),
        Value::str("12-24% (bindings ignored)"),
        Value::str("host detour, ~3 GB/s"),
    ]);
    r.push_row(vec![
        Value::str("sources of overhead"),
        Value::str("EPC paging, enclave exits, memory, NUMA"),
        Value::str("virtualization tax, hugepages, memory, NUMA"),
        Value::str("PCIe transfers, kernel launch"),
    ]);
    r.push_row(vec![
        Value::str("development effort"),
        Value::str("high (libOS, manifest)"),
        Value::str("low (standard VM)"),
        Value::str("low (unchanged CUDA)"),
    ]);
    r.push_row(vec![
        Value::str("cost-efficient for"),
        Value::str("small inputs/batches"),
        Value::str("small inputs/batches"),
        Value::str("large inputs/batches"),
    ]);
    r.note("glyphs: ■ full, ◪ partial, □ none (as in the paper)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_tee::threat::Protection;

    #[test]
    fn table_covers_security_and_performance() {
        let t = run();
        assert!(t.rows.len() >= 13);
        assert!(t
            .rows
            .iter()
            .any(|row| row[0].as_str() == Some("single-resource overhead")));
    }

    #[test]
    fn h100_has_partial_cells_cpu_tees_do_not() {
        // Table I: H100's HBM/NVLink gaps show as partial protection.
        let partial = Protection::Partial.glyph();
        let t = run();
        let is_partial = |v: &Value| v.as_str() == Some(partial);
        let is_security = |v: &Value| v.as_str().is_some_and(|s| s.starts_with("security:"));
        let gpu_partials = t
            .rows
            .iter()
            .filter(|row| is_security(&row[0]) && is_partial(&row[3]))
            .count();
        let sgx_partials = t
            .rows
            .iter()
            .filter(|row| is_security(&row[0]) && is_partial(&row[1]))
            .count();
        assert!(gpu_partials >= 2, "H100 should have partial cells");
        assert_eq!(sgx_partials, 0, "SGX should have no partial cells");
    }

    #[test]
    fn single_resource_overheads_single_digit() {
        let t = run();
        let row = t
            .rows
            .iter()
            .find(|row| row[0].as_str() == Some("single-resource overhead"))
            .unwrap();
        for cell in &row[1..] {
            let s = cell.as_str().unwrap();
            let v: f64 = s.trim_end_matches('%').parse().unwrap();
            assert!((2.0..12.0).contains(&v), "{s}");
        }
    }
}
