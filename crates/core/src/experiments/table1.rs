//! Table I: the summary matrix of evaluated systems — security,
//! performance and cost characteristics per platform.

use super::{pct, ExperimentResult};
use cllm_tee::platform::TeeKind;
use cllm_tee::threat::{security_score, Attack};

/// Run the experiment (most cells come from `cllm_tee::threat`; the
/// performance rows cite the measured single-resource overheads from the
/// other experiments).
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "table1",
        "Summary of evaluated systems (Table I)",
        &["property", "SGX (process TEE)", "TDX (VM TEE)", "H100 cGPU"],
    );

    let kinds = [TeeKind::Sgx, TeeKind::Tdx, TeeKind::GpuCc];
    let glyph = |k: TeeKind, a: Attack| cllm_tee::threat::protection(k, a).glyph().to_owned();

    for attack in Attack::all() {
        r.push_row(vec![
            format!("security: {}", attack.description()),
            glyph(kinds[0], attack),
            glyph(kinds[1], attack),
            glyph(kinds[2], attack),
        ]);
    }
    r.push_row(vec![
        "security score".to_owned(),
        pct(security_score(TeeKind::Sgx) * 100.0),
        pct(security_score(TeeKind::Tdx) * 100.0),
        pct(security_score(TeeKind::GpuCc) * 100.0),
    ]);

    // Performance rows measured by the other experiments.
    let fig4_sgx = super::fig4::point(
        &cllm_tee::platform::CpuTeeConfig::sgx(),
        cllm_hw::DType::Bf16,
    );
    let fig4_tdx = super::fig4::point(
        &cllm_tee::platform::CpuTeeConfig::tdx(),
        cllm_hw::DType::Bf16,
    );
    let gpu = super::fig11::overhead(8, 512);
    r.push_row(vec![
        "single-resource overhead".to_owned(),
        pct(fig4_sgx.thr_overhead_pct),
        pct(fig4_tdx.thr_overhead_pct),
        pct(gpu),
    ]);
    r.push_row(vec![
        "batch size up -> overhead".to_owned(),
        "down".to_owned(),
        "down".to_owned(),
        "down".to_owned(),
    ]);
    r.push_row(vec![
        "input size up -> overhead".to_owned(),
        "down then up".to_owned(),
        "down then up".to_owned(),
        "down".to_owned(),
    ]);
    r.push_row(vec![
        "scale-up (multi-socket / multi-GPU)".to_owned(),
        "prohibitive (no NUMA)".to_owned(),
        "12-24% (bindings ignored)".to_owned(),
        "host detour, ~3 GB/s".to_owned(),
    ]);
    r.push_row(vec![
        "sources of overhead".to_owned(),
        "EPC paging, enclave exits, memory, NUMA".to_owned(),
        "virtualization tax, hugepages, memory, NUMA".to_owned(),
        "PCIe transfers, kernel launch".to_owned(),
    ]);
    r.push_row(vec![
        "development effort".to_owned(),
        "high (libOS, manifest)".to_owned(),
        "low (standard VM)".to_owned(),
        "low (unchanged CUDA)".to_owned(),
    ]);
    r.push_row(vec![
        "cost-efficient for".to_owned(),
        "small inputs/batches".to_owned(),
        "small inputs/batches".to_owned(),
        "large inputs/batches".to_owned(),
    ]);
    r.note("glyphs: ■ full, ◪ partial, □ none (as in the paper)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_tee::threat::Protection;

    #[test]
    fn table_covers_security_and_performance() {
        let t = run();
        assert!(t.rows.len() >= 13);
        assert!(t
            .rows
            .iter()
            .any(|row| row[0] == "single-resource overhead"));
    }

    #[test]
    fn h100_has_partial_cells_cpu_tees_do_not() {
        // Table I: H100's HBM/NVLink gaps show as partial protection.
        let partial = Protection::Partial.glyph();
        let t = run();
        let gpu_partials = t
            .rows
            .iter()
            .filter(|row| row[0].starts_with("security:") && row[3] == partial)
            .count();
        let sgx_partials = t
            .rows
            .iter()
            .filter(|row| row[0].starts_with("security:") && row[1] == partial)
            .count();
        assert!(gpu_partials >= 2, "H100 should have partial cells");
        assert_eq!(sgx_partials, 0, "SGX should have no partial cells");
    }

    #[test]
    fn single_resource_overheads_single_digit() {
        let t = run();
        let row = t
            .rows
            .iter()
            .find(|row| row[0] == "single-resource overhead")
            .unwrap();
        for cell in &row[1..] {
            let v: f64 = cell.trim_end_matches('%').parse().unwrap();
            assert!((2.0..12.0).contains(&v), "{cell}");
        }
    }
}
