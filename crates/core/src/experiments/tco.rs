//! Rent-vs-buy extension: the paper prices its hardware (Xeon 6530
//! $2,130, Platinum 8580 $10,710, H100 NVL ~$30,000) and rents from
//! GCP/Azure; this experiment closes the loop with an amortized
//! total-cost-of-ownership comparison for sustained confidential serving.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{CpuScenario, GpuScenario};
use cllm_cost::{cost_per_mtok, CpuPricing, GpuPricing, OnPremCost};
use cllm_perf::CpuTarget;
use cllm_workload::phase::RequestSpec;

/// Sustained TDX throughput of a dual-socket EMR2 server at batch 64.
fn cpu_tps() -> f64 {
    CpuScenario::llama2_7b(RequestSpec::new(64, 128, 128))
        .with_target(CpuTarget::emr2_dual_socket())
        .simulate()
        .e2e_tps
}

/// Sustained cGPU throughput at batch 64.
fn gpu_tps() -> f64 {
    GpuScenario::llama2_7b(RequestSpec::new(64, 128, 128))
        .simulate()
        .e2e_tps
}

/// Cloud $/hr for the CPU config (both sockets' cores + 256 GiB).
fn cpu_cloud_per_hr() -> f64 {
    CpuPricing::gcp_spot_us_east1().instance_cost_per_hr(2 * 60 * 2, 256.0)
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "tco",
        "Rent vs buy for sustained confidential serving (Llama2-7B, batch 64)",
        vec![
            Column::str("option"),
            Column::float("usd_per_hr", Unit::UsdPerHr, 3),
            Column::float("usd_per_mtok", Unit::UsdPerMtok, 3),
            Column::pct("break_even_utilization"),
        ],
    );
    let cpu_rate = cpu_tps();
    let gpu_rate = gpu_tps();
    let rows: [(&str, f64, f64, Option<f64>); 4] = [
        ("EMR2 TDX (GCP spot)", cpu_cloud_per_hr(), cpu_rate, None),
        (
            "EMR2 TDX (owned)",
            OnPremCost::emr2_server().cost_per_hr(),
            cpu_rate,
            Some(OnPremCost::emr2_server().break_even_utilization(cpu_cloud_per_hr())),
        ),
        (
            "cGPU H100 (Azure)",
            GpuPricing::azure_ncc_h100().per_hr,
            gpu_rate,
            None,
        ),
        (
            "cGPU H100 (owned)",
            OnPremCost::h100_server_share().cost_per_hr(),
            gpu_rate,
            Some(
                OnPremCost::h100_server_share()
                    .break_even_utilization(GpuPricing::azure_ncc_h100().per_hr),
            ),
        ),
    ];
    for (name, per_hr, tps, break_even) in rows {
        r.push_row(vec![
            Value::str(name),
            Value::float(per_hr, Unit::UsdPerHr, 3),
            Value::float(cost_per_mtok(per_hr, tps), Unit::UsdPerMtok, 3),
            break_even.map_or(Value::Missing, |b| Value::pct(b * 100.0)),
        ]);
    }
    r.note("break-even utilization: fraction of wall time the machine must be busy before owning beats renting");
    r.note("extension beyond the paper, built on its published hardware list prices");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owning_h100_beats_azure_at_modest_utilization() {
        let be = OnPremCost::h100_server_share()
            .break_even_utilization(GpuPricing::azure_ncc_h100().per_hr);
        assert!(be < 0.5, "H100 break-even {be}");
    }

    #[test]
    fn spot_cpu_renting_is_hard_to_beat() {
        // Spot CPU pricing is so low that owning requires high utilization.
        let be = OnPremCost::emr2_server().break_even_utilization(cpu_cloud_per_hr());
        // Owning a CPU server only pays off near half-time utilization
        // against spot rates — much later than the H100's break-even.
        let gpu_be = OnPremCost::h100_server_share()
            .break_even_utilization(GpuPricing::azure_ncc_h100().per_hr);
        assert!(be > 0.35, "CPU break-even {be}");
        assert!(be > 2.0 * gpu_be, "CPU {be} vs GPU {gpu_be}");
    }

    #[test]
    fn table_has_four_options() {
        assert_eq!(run().rows.len(), 4);
    }
}
