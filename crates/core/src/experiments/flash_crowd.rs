//! Flash-crowd survival: can an attestation-aware autoscaler absorb a
//! sudden 10x traffic burst on each confidential platform, and what do
//! warm pools and brownout degradation buy?
//!
//! Each platform (SGX socket, TDX socket, confidential H100) faces the
//! *same shaped* flash crowd — a diurnal baseline with seeded burst
//! windows and a free/standard/premium tier mix from
//! `cllm_workload::trace` — with the offered rate sized to its
//! steady-state capacity, under three operating modes:
//!
//! * **cold** — scale-ups rent fresh capacity that must pay the full
//!   secure boot before joining routing: a real attested handshake
//!   through `cllm_tee::session` plus the platform-priced weight
//!   unseal. The burst lands while the new nodes are still booting.
//! * **warm** — a pre-attested warm pool stands by at carrying cost;
//!   scale-ups promote instantly and the cold-start toll disappears
//!   from the TTFT tail (but the idle pool appears on the bill).
//! * **brownout** — no extra capacity at all; instead the fleet trims
//!   output length under deep queues (degraded answers beat shed
//!   users) while tiered admission sheds free traffic first.
//!
//! The table reports the three terminal states (conservation is
//! `completed + shed + aborted == arrivals`), the cold-start count and
//! seconds paid, the burst-window p99 TTFT (requests that arrived
//! *inside* a burst), per-tier SLO attainment for premium vs free, and
//! the effective $/Mtok on delivered goodput — rental, warm-pool
//! carrying cost and base fleet included.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::Sweep;
use cllm_cost::{CpuPricing, GpuPricing, SpillPenalty};
use cllm_serve::autoscale::{
    simulate_autoscale, AutoscaleConfig, AutoscaleReport, ControllerConfig, RentalSpec,
};
use cllm_serve::cluster::NodeSpec;
use cllm_serve::faults::FaultRates;
use cllm_serve::router::{BreakerConfig, BrownoutConfig, RetryBudget, TieredAdmission};
use cllm_serve::sim::{ServingConfig, ServingNode};
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig};
use cllm_workload::trace::{Tier, TrafficModel};

/// Fixed seed for the traffic trace and rental fault schedules: every
/// run pins the same crowd, so the table is golden-stable.
const TRAFFIC_SEED: u64 = 9;

/// Simulated horizon. Long enough for bursts to land, scale-ups to
/// boot, and drained scale-downs to complete inside the window.
const HORIZON_S: f64 = 90.0;

/// Burst multiplier: the flash crowd is 10x the diurnal baseline.
const BURST_MULT: f64 = 10.0;

/// Platforms compared, in table order.
pub const PLATFORMS: [&str; 3] = ["sgx", "tdx", "cgpu"];

/// Operating modes compared for each platform, in table order.
pub const MODES: [&str; 3] = ["cold", "warm", "brownout"];

/// Rental cap for the reactive controller (and the warm-pool size in
/// `warm` mode, so every scale-up there is a promotion).
const MAX_RENTED: usize = 4;

fn node_for(platform: &str) -> ServingNode {
    match platform {
        "sgx" => ServingNode::Cpu {
            tee: CpuTeeConfig::sgx(),
        },
        "tdx" => ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        },
        "cgpu" => ServingNode::Gpu {
            gpu: cllm_hw::presets::h100_nvl(),
            tee: GpuTeeConfig::confidential(),
        },
        other => panic!("unknown platform {other:?}"),
    }
}

/// Baseline offered rate, sized to each platform's steady-state
/// capacity so the 10x burst is a comparable *relative* shock — the
/// paper's normalization: SGX serves a fraction of TDX throughput, and
/// the confidential H100 an order of magnitude more.
fn rate_for(platform: &str) -> f64 {
    match platform {
        "sgx" => 0.6,
        "tdx" => 2.0,
        "cgpu" => 8.0,
        other => panic!("unknown platform {other:?}"),
    }
}

/// Hourly price anchors: GCP CPU rates for the TEE sockets, Azure NCC
/// H100 for the confidential GPU (same anchors as `cluster_resilience`).
fn base_price_for(platform: &str) -> f64 {
    let cfg = ServingConfig::small_test();
    match platform {
        "sgx" | "tdx" => CpuPricing::gcp_spot_us_east1()
            .instance_cost_per_hr(cfg.target.cores_per_socket * 2, 128.0),
        "cgpu" => GpuPricing::azure_ncc_h100().per_hr,
        other => panic!("unknown platform {other:?}"),
    }
}

/// The autoscaler configuration for one `(platform, mode)` arm.
///
/// # Panics
///
/// Panics on an unknown platform or mode id.
#[must_use]
pub fn config_for(platform: &str, mode: &str) -> AutoscaleConfig {
    let node = node_for(platform);
    let mut traffic = TrafficModel::flash_crowd(rate_for(platform), BURST_MULT, TRAFFIC_SEED);
    // Production burst cadence is ~30/hr; the 90 s horizon needs a
    // denser schedule so bursts actually land inside the window.
    traffic.bursts.bursts_per_hr = 240.0;
    traffic.bursts.window_s = 15.0;
    let base_price = base_price_for(platform);
    let (warm_pool, brownout) = match mode {
        "cold" => (0, None),
        // Deeper than the rental cap: scale-down churn (drain, then a
        // later burst re-scales up) draws fresh standbys, and the warm
        // arm should stay warm through it.
        "warm" => (3 * MAX_RENTED, None),
        "brownout" => (
            0,
            // Demo-scale thresholds: the production default (enter at
            // 256 queued) never trips against these small fleets.
            Some(BrownoutConfig {
                enter_depth: 48,
                exit_depth: 16,
                output_cap_tokens: 32,
            }),
        ),
        other => panic!("unknown mode {other:?}"),
    };
    AutoscaleConfig {
        serving: ServingConfig {
            duration_s: HORIZON_S,
            ..ServingConfig::small_test()
        },
        traffic,
        base_fleet: vec![NodeSpec::new(node.clone(), false, FaultRates::none(), 1)],
        base_price_per_hr: base_price,
        rental: RentalSpec {
            node,
            rates: FaultRates::none(),
            // Remote-attestation round trip before the unseal; the
            // weight unseal itself is priced by the platform.
            attest_s: 0.5,
            // On-demand surge capacity carries a premium over the
            // reserved base socket.
            price_per_hr: base_price * 1.5,
            seed: 77,
        },
        warm_pool,
        controller: ControllerConfig {
            control_interval_s: 2.0,
            max_rented: if mode == "brownout" { 0 } else { MAX_RENTED },
            ..ControllerConfig::default()
        },
        tiers: TieredAdmission::default(),
        retry: RetryBudget::default(),
        brownout,
        breaker: BreakerConfig::default(),
        spill: SpillPenalty::cross_platform(),
    }
}

/// The autoscaler report for one `(platform, mode)` arm.
#[must_use]
pub fn report_for(platform: &str, mode: &str) -> AutoscaleReport {
    simulate_autoscale(&config_for(platform, mode))
}

/// Run the experiment.
#[must_use]
#[allow(clippy::cast_possible_wrap)] // counts are tiny (≤ arrivals in a 90 s trace)
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "flash_crowd",
        "Flash-crowd survival per platform: cold scale-up vs warm pool vs brownout",
        vec![
            Column::str("arm"),
            Column::int("completed"),
            Column::int("shed"),
            Column::int("aborted"),
            Column::int("cold_starts"),
            Column::float("cold_start_s", Unit::Seconds, 2),
            Column::float("ttft_p99_burst_s", Unit::Seconds, 3),
            Column::pct("slo_premium"),
            Column::pct("slo_free"),
            Column::float("goodput_tps", Unit::TokensPerSec, 1),
            Column::float("usd_per_mtok", Unit::UsdPerMtok, 3),
        ],
    );
    let arms: Vec<(&str, &str)> = PLATFORMS
        .iter()
        .flat_map(|&p| MODES.iter().map(move |&m| (p, m)))
        .collect();
    let sweep = Sweep::over(arms);
    r.extend_rows(sweep.rows(|&(platform, mode)| {
        let report = report_for(platform, mode);
        assert_eq!(
            report.completed + report.shed + report.aborted,
            report.arrivals,
            "autoscale conservation violated on {platform}-{mode}"
        );
        let premium = &report.tiers[Tier::Premium.index()];
        let free = &report.tiers[Tier::Free.index()];
        vec![
            Value::str(format!("{platform}-{mode}")),
            Value::int(report.completed as i64),
            Value::int(report.shed as i64),
            Value::int(report.aborted as i64),
            Value::int(report.cold_starts as i64),
            Value::float(report.cold_start_s, Unit::Seconds, 2),
            Value::float(report.ttft_p99_burst_s, Unit::Seconds, 3),
            Value::pct(premium.slo_attainment() * 100.0),
            Value::pct(free.slo_attainment() * 100.0),
            Value::float(report.goodput_tps, Unit::TokensPerSec, 1),
            Value::float(report.usd_per_mtok, Unit::UsdPerMtok, 3),
        ]
    }));
    r.note("same crowd shape (diurnal + 10x seeded bursts, free/standard/premium mix) per platform, rate sized to steady-state capacity; conservation is completed + shed + aborted == arrivals");
    r.note("cold scale-ups pay a real attested handshake via cllm_tee::session plus the platform-priced weight unseal before joining routing; warm promotes a pre-attested pool at carrying cost");
    r.note("brownout rents nothing and trims output length under deep queues while tiered admission sheds free traffic first; $/Mtok includes rental, warm-pool carrying and base-fleet cost over delivered tokens");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_on_every_arm() {
        for platform in PLATFORMS {
            for mode in MODES {
                let r = report_for(platform, mode);
                assert_eq!(
                    r.completed + r.shed + r.aborted,
                    r.arrivals,
                    "{platform}-{mode}: {} + {} + {} != {}",
                    r.completed,
                    r.shed,
                    r.aborted,
                    r.arrivals
                );
                assert!(r.arrivals > 0, "{platform}-{mode}: empty trace");
            }
        }
    }

    #[test]
    fn cold_mode_pays_the_secure_boot_toll() {
        for platform in PLATFORMS {
            let r = report_for(platform, "cold");
            assert!(
                r.cold_starts > 0,
                "{platform}-cold: the burst must force rented capacity"
            );
            assert!(r.cold_start_s > 0.0);
            assert!(r.unseal_s > 0.0, "{platform}-cold: weight unseal is paid");
        }
    }

    #[test]
    fn warm_pool_eliminates_cold_starts() {
        for platform in PLATFORMS {
            let warm = report_for(platform, "warm");
            assert_eq!(
                warm.cold_starts, 0,
                "{platform}-warm: a full pool must absorb every scale-up"
            );
            assert!(
                warm.warm_promotions > 0,
                "{platform}-warm: the burst must promote warm nodes"
            );
            // Carrying cost: promoted standbys bill as rentals from
            // t=0 (readiness was bought before the crowd arrived);
            // never-promoted standbys bill the whole horizon as pool.
            assert!(
                warm.rental_cost_usd > 0.0,
                "{platform}-warm: promoted standbys bill from time zero"
            );
            if (warm.warm_promotions as usize) < 3 * MAX_RENTED {
                assert!(
                    warm.warm_pool_cost_usd > 0.0,
                    "{platform}-warm: idle standbys must carry a cost"
                );
            }
        }
    }

    #[test]
    fn brownout_trims_instead_of_renting() {
        for platform in PLATFORMS {
            let r = report_for(platform, "brownout");
            assert_eq!(r.scale_ups, 0, "{platform}-brownout rents nothing");
            assert!(
                r.brownout_activations > 0,
                "{platform}-brownout: deep queues must trip degradation"
            );
            assert!(r.tokens_trimmed > 0);
        }
    }

    #[test]
    fn shedding_protects_premium_over_free() {
        for platform in PLATFORMS {
            for mode in MODES {
                let r = report_for(platform, mode);
                let shed_frac = |t: Tier| {
                    let tr = &r.tiers[t.index()];
                    if tr.arrivals == 0 {
                        0.0
                    } else {
                        tr.shed as f64 / tr.arrivals as f64
                    }
                };
                assert!(
                    shed_frac(Tier::Premium) <= shed_frac(Tier::Free) + 1e-12,
                    "{platform}-{mode}: premium shed fraction {} > free {}",
                    shed_frac(Tier::Premium),
                    shed_frac(Tier::Free)
                );
            }
        }
    }

    #[test]
    fn table_has_one_row_per_arm_and_is_deterministic() {
        let a = run();
        assert_eq!(a.rows.len(), PLATFORMS.len() * MODES.len());
        let b = run();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
