//! Mixture-of-experts extension: the paper's intro notes the Llama family
//! moving to mixtures of experts (Llama 4); this experiment asks what
//! that does to TEE overheads.
//!
//! MoE inference keeps *all* experts resident (large footprint — heavy
//! TLB pressure under TDX's 2 MiB pages) while streaming only the routed
//! experts per step (sparse traffic). The footprint/traffic ratio is what
//! TEE address translation taxes, so MoE is a worst-ish case for VM TEEs.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{CpuScenario, Sweep};
use cllm_perf::{CpuTarget, SimResult};
use cllm_workload::phase::RequestSpec;
use cllm_workload::{zoo, ModelConfig};
use std::sync::Arc;

fn scenario(model: &ModelConfig, batch: u64) -> CpuScenario {
    // Mixtral's full expert set wants dual-socket memory headroom, like
    // the 70B dense model.
    CpuScenario::llama2_7b(RequestSpec::new(batch, 512, 64))
        .with_model(model.clone())
        .with_target(CpuTarget::emr2_dual_socket())
}

fn sim(model: &ModelConfig, batch: u64) -> Arc<SimResult> {
    scenario(model, batch).simulate()
}

/// TDX overhead for a model at a batch size.
#[must_use]
pub fn overhead(model: &ModelConfig, batch: u64) -> f64 {
    scenario(model, batch).thr_overhead()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "moe",
        "Mixture-of-experts under TDX: Mixtral 8x7B vs dense Llama2 (2 sockets)",
        vec![
            Column::str("model"),
            Column::int("batch"),
            Column::float("experts_touched", Unit::None, 1),
            Column::float("tdx_tps", Unit::TokensPerSec, 1),
            Column::pct("tdx_overhead"),
        ],
    );
    let models = [zoo::llama2_13b(), zoo::mixtral_8x7b()];
    let points: Vec<(ModelConfig, u64)> = models
        .iter()
        .flat_map(|m| [1u64, 8, 64].into_iter().map(move |b| (m.clone(), b)))
        .collect();
    r.extend_rows(Sweep::over(points).rows(|(model, batch)| {
        let tdx = sim(model, *batch);
        vec![
            Value::str(model.name.clone()),
            Value::uint(*batch),
            Value::float(model.experts_touched(*batch), Unit::None, 1),
            Value::float(tdx.decode_tps, Unit::TokensPerSec, 1),
            Value::pct(overhead(model, *batch)),
        ]
    }));
    r.note("MoE keeps all experts resident (footprint) but streams only routed experts (traffic); the widened footprint/traffic ratio is what TDX's 2 MiB-page translation taxes");
    r.note("extension beyond the paper, motivated by its intro's note on the Llama family's move to mixtures of experts");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_tee::platform::CpuTeeConfig;

    #[test]
    fn moe_overhead_at_least_dense() {
        // Same active-parameter class (Mixtral top-2 ≈ 13B dense): the
        // MoE's resident footprint should make TDX overhead >= dense.
        let dense = overhead(&zoo::llama2_13b(), 1);
        let moe = overhead(&zoo::mixtral_8x7b(), 1);
        assert!(moe >= dense - 0.5, "MoE {moe}% vs dense {dense}%");
    }

    #[test]
    fn batch_activates_more_experts_and_traffic() {
        let m = zoo::mixtral_8x7b();
        let t1 = sim(&m, 1);
        let t64 = sim(&m, 64);
        // Throughput still improves with batch, but sublinearly versus a
        // dense model because expert traffic grows with coverage.
        let moe_scaling = t64.decode_tps / t1.decode_tps;
        let d = zoo::llama2_13b();
        let d1 = sim(&d, 1);
        let d64 = sim(&d, 64);
        let dense_scaling = d64.decode_tps / d1.decode_tps;
        assert!(moe_scaling > 1.5, "MoE must still batch: {moe_scaling}");
        assert!(
            moe_scaling < dense_scaling,
            "MoE batching gain {moe_scaling} should trail dense {dense_scaling}"
        );
    }

    #[test]
    fn moe_batch1_faster_than_equivalent_dense_total() {
        // Sparse streaming: at batch 1, Mixtral (47B resident, ~13B
        // active) must decode much faster than a dense 70B and in the
        // same class as a dense 13B.
        let moe = scenario(&zoo::mixtral_8x7b(), 1)
            .with_tee(CpuTeeConfig::bare_metal())
            .simulate();
        let dense70 = scenario(&zoo::llama2_70b(), 1)
            .with_tee(CpuTeeConfig::bare_metal())
            .simulate();
        assert!(moe.summary.mean < dense70.summary.mean * 0.6);
    }

    #[test]
    fn overheads_in_plausible_band() {
        for batch in [1u64, 8, 64] {
            let o = overhead(&zoo::mixtral_8x7b(), batch);
            assert!((5.0..35.0).contains(&o), "batch {batch}: {o}%");
        }
    }
}
