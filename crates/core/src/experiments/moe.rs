//! Mixture-of-experts extension: the paper's intro notes the Llama family
//! moving to mixtures of experts (Llama 4); this experiment asks what
//! that does to TEE overheads.
//!
//! MoE inference keeps *all* experts resident (large footprint — heavy
//! TLB pressure under TDX's 2 MiB pages) while streaming only the routed
//! experts per step (sparse traffic). The footprint/traffic ratio is what
//! TEE address translation taxes, so MoE is a worst-ish case for VM TEEs.

use super::{num, pct, ExperimentResult};
use cllm_hw::DType;
use cllm_perf::{simulate_cpu, throughput_overhead_pct, CpuTarget, SimResult};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::{zoo, ModelConfig};

fn sim(model: &ModelConfig, batch: u64, tee: &CpuTeeConfig) -> SimResult {
    // Mixtral's full expert set wants dual-socket memory headroom, like
    // the 70B dense model.
    let req = RequestSpec::new(batch, 512, 64);
    simulate_cpu(
        model,
        &req,
        DType::Bf16,
        &CpuTarget::emr2_dual_socket(),
        tee,
    )
}

/// TDX overhead for a model at a batch size.
#[must_use]
pub fn overhead(model: &ModelConfig, batch: u64) -> f64 {
    let bare = sim(model, batch, &CpuTeeConfig::bare_metal());
    let tdx = sim(model, batch, &CpuTeeConfig::tdx());
    throughput_overhead_pct(bare.decode_tps, tdx.decode_tps)
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "moe",
        "Mixture-of-experts under TDX: Mixtral 8x7B vs dense Llama2 (2 sockets)",
        &[
            "model",
            "batch",
            "experts_touched",
            "tdx_tps",
            "tdx_overhead",
        ],
    );
    for model in [zoo::llama2_13b(), zoo::mixtral_8x7b()] {
        for batch in [1u64, 8, 64] {
            let tdx = sim(&model, batch, &CpuTeeConfig::tdx());
            r.push_row(vec![
                model.name.clone(),
                batch.to_string(),
                num(model.experts_touched(batch), 1),
                num(tdx.decode_tps, 1),
                pct(overhead(&model, batch)),
            ]);
        }
    }
    r.note("MoE keeps all experts resident (footprint) but streams only routed experts (traffic); the widened footprint/traffic ratio is what TDX's 2 MiB-page translation taxes");
    r.note("extension beyond the paper, motivated by its intro's note on the Llama family's move to mixtures of experts");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moe_overhead_at_least_dense() {
        // Same active-parameter class (Mixtral top-2 ≈ 13B dense): the
        // MoE's resident footprint should make TDX overhead >= dense.
        let dense = overhead(&zoo::llama2_13b(), 1);
        let moe = overhead(&zoo::mixtral_8x7b(), 1);
        assert!(moe >= dense - 0.5, "MoE {moe}% vs dense {dense}%");
    }

    #[test]
    fn batch_activates_more_experts_and_traffic() {
        let m = zoo::mixtral_8x7b();
        let t1 = sim(&m, 1, &CpuTeeConfig::tdx());
        let t64 = sim(&m, 64, &CpuTeeConfig::tdx());
        // Throughput still improves with batch, but sublinearly versus a
        // dense model because expert traffic grows with coverage.
        let moe_scaling = t64.decode_tps / t1.decode_tps;
        let d = zoo::llama2_13b();
        let d1 = sim(&d, 1, &CpuTeeConfig::tdx());
        let d64 = sim(&d, 64, &CpuTeeConfig::tdx());
        let dense_scaling = d64.decode_tps / d1.decode_tps;
        assert!(moe_scaling > 1.5, "MoE must still batch: {moe_scaling}");
        assert!(
            moe_scaling < dense_scaling,
            "MoE batching gain {moe_scaling} should trail dense {dense_scaling}"
        );
    }

    #[test]
    fn moe_batch1_faster_than_equivalent_dense_total() {
        // Sparse streaming: at batch 1, Mixtral (47B resident, ~13B
        // active) must decode much faster than a dense 70B and in the
        // same class as a dense 13B.
        let moe = sim(&zoo::mixtral_8x7b(), 1, &CpuTeeConfig::bare_metal());
        let dense70 = sim(&zoo::llama2_70b(), 1, &CpuTeeConfig::bare_metal());
        assert!(moe.summary.mean < dense70.summary.mean * 0.6);
    }

    #[test]
    fn overheads_in_plausible_band() {
        for batch in [1u64, 8, 64] {
            let o = overhead(&zoo::mixtral_8x7b(), batch);
            assert!((5.0..35.0).contains(&o), "batch {batch}: {o}%");
        }
    }
}
