//! Figure 13: input-size scaling of the cost comparison (EMR2, batch 4,
//! 128 output tokens, bf16, single socket). CPU TEEs are far more
//! sensitive to input size than cGPUs: attention grows quadratically with
//! the input, which hits the compute-poor CPU much harder (Section V-D2).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{CpuScenario, GpuScenario, Sweep};
use cllm_cost::{cost_advantage_pct, cost_per_mtok, CpuPricing, GpuPricing};
use cllm_perf::CpuTarget;
use cllm_workload::phase::RequestSpec;

/// Inputs swept.
pub const INPUTS: [u64; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Fixed batch size of the figure.
pub const BATCH: u64 = 4;

fn cpu_usd_per_mtok(input: u64) -> f64 {
    // As in Figure 12, the operator picks the cost-optimal core count.
    let pricing = CpuPricing::gcp_spot_us_east1();
    super::fig12::CORES
        .iter()
        .map(|&cores| {
            let sim = CpuScenario::llama2_7b(RequestSpec::new(BATCH, input, 128))
                .with_target(CpuTarget::emr2_single_socket().with_cores(cores))
                .simulate();
            let price = pricing.instance_cost_per_hr(
                cores * super::fig12::VCPUS_PER_CORE,
                super::fig12::MEMORY_GIB,
            );
            cost_per_mtok(price, sim.e2e_tps)
        })
        .fold(f64::INFINITY, f64::min)
}

fn gpu_usd_per_mtok(input: u64) -> f64 {
    let sim = GpuScenario::llama2_7b(RequestSpec::new(BATCH, input, 128)).simulate();
    cost_per_mtok(GpuPricing::azure_ncc_h100().per_hr, sim.e2e_tps)
}

/// CPU-vs-cGPU cost advantage at one input size (positive = CPU cheaper).
#[must_use]
pub fn advantage_pct(input: u64) -> f64 {
    cost_advantage_pct(cpu_usd_per_mtok(input), gpu_usd_per_mtok(input))
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig13",
        "Input-size scaling of the TDX-vs-cGPU cost comparison (batch 4, EMR2)",
        vec![
            Column::int("input"),
            Column::float("tdx_usd_per_mtok", Unit::UsdPerMtok, 3),
            Column::float("cgpu_usd_per_mtok", Unit::UsdPerMtok, 3),
            Column::pct("cpu_advantage"),
        ],
    );
    r.extend_rows(Sweep::over(INPUTS).rows(|&input| {
        vec![
            Value::uint(input),
            Value::float(cpu_usd_per_mtok(input), Unit::UsdPerMtok, 3),
            Value::float(gpu_usd_per_mtok(input), Unit::UsdPerMtok, 3),
            Value::pct(advantage_pct(input)),
        ]
    }));
    r.note("paper: CPU cost advantage collapses when the input doubles (86% -> -10%), because attention compute grows quadratically with input but only linearly with batch");
    r.note("inputs beyond 4096 model long-context Llama2 variants; the crossover input is larger in our reproduction than in the paper (see EXPERIMENTS.md)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_declines_with_input() {
        let mut prev = f64::INFINITY;
        for input in INPUTS {
            let adv = advantage_pct(input);
            assert!(adv < prev + 1.5, "advantage rose at input {input}: {adv}");
            prev = adv;
        }
    }

    #[test]
    fn cpu_starts_ahead_and_loses() {
        let short = advantage_pct(INPUTS[0]);
        let long = advantage_pct(*INPUTS.last().unwrap());
        assert!(short > 25.0, "short-input CPU advantage only {short}%");
        assert!(long < 0.0, "CPU should lose at long input, got {long}%");
    }

    #[test]
    fn gpu_cost_is_input_insensitive() {
        // Section V-D2: "CPU TEEs are considerably more sensitive to input
        // size than cGPUs".
        let gpu_ratio = gpu_usd_per_mtok(4096) / gpu_usd_per_mtok(64);
        let cpu_ratio = cpu_usd_per_mtok(4096) / cpu_usd_per_mtok(64);
        assert!(
            cpu_ratio > 1.15 * gpu_ratio,
            "cpu ratio {cpu_ratio} !>> gpu ratio {gpu_ratio}"
        );
    }
}
