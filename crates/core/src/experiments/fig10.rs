//! Figure 10: input-size scaling of TDX generation-throughput overhead
//! (EMR2, single socket, batch 64, 128 output tokens).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, CpuScenario, Sweep};
use cllm_hw::DType;
use cllm_perf::throughput_overhead_pct;
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;

/// TDX overhead at one input size, on both throughput metrics:
/// `(decode_overhead_pct, e2e_overhead_pct)`.
///
/// The paper's two mechanisms live on different metrics in our
/// reproduction: the initial *decrease* ("the workload saturating the
/// AMX units and becoming more compute-bound") shows on the end-to-end
/// rate as the compute-bound prefill's share grows, while the *increase*
/// past ~2048 tokens (KV cache blowing TLB reach) shows on the
/// steady-state decode rate.
#[must_use]
pub fn overheads(dtype: DType, input: u64) -> (f64, f64) {
    let tdx = CpuScenario::llama2_7b(RequestSpec::new(64, input, 128)).with_dtype(dtype);
    let bare = tdx.baseline().simulate();
    let sim = tdx.simulate();
    (
        throughput_overhead_pct(bare.decode_tps, sim.decode_tps),
        throughput_overhead_pct(bare.e2e_tps, sim.e2e_tps),
    )
}

const INPUTS: [u64; 7] = [32, 128, 512, 1024, 2048, 3072, 4096];

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig10",
        "Input-size scaling of TDX overhead, Llama2-7B, batch 64 (EMR2)",
        vec![
            Column::str("dtype"),
            Column::int("input_tokens"),
            Column::pct("decode_overhead"),
            Column::pct("e2e_overhead"),
            Column::float("kv_cache_gib", Unit::Gib, 1),
        ],
    );
    let model = zoo::llama2_7b();
    let sweep = Sweep::over(grid2(&[DType::Bf16, DType::Int8], &INPUTS));
    r.extend_rows(sweep.rows(|&(dtype, input)| {
        let kv = cllm_workload::kv::kv_bytes_total(&model, 64, input + 128, dtype) / cllm_hw::GIB;
        let (decode, e2e) = overheads(dtype, input);
        vec![
            Value::str(dtype.label()),
            Value::uint(input),
            Value::pct(decode),
            Value::pct(e2e),
            Value::float(kv, Unit::Gib, 1),
        ]
    }));
    r.note("paper: overhead decreases with input size until ~2048 tokens, then rises as the KV cache makes the workload memory-bound (TLB pressure)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2e_overhead_dips_with_input() {
        // Growing compute-bound prefill share lowers the end-to-end
        // overhead (the paper's "saturating the AMX units").
        for dtype in [DType::Bf16, DType::Int8] {
            let (_, small) = overheads(dtype, 32);
            let (_, mid) = overheads(dtype, 2048);
            assert!(mid < small, "{dtype:?}: no dip ({small} -> {mid})");
        }
    }

    #[test]
    fn decode_overhead_rises_at_long_input() {
        // KV cache outgrows TLB reach -> translation costs rise under
        // TDX's 2 MiB pages (the paper's increase past ~2048 tokens).
        for dtype in [DType::Bf16, DType::Int8] {
            let (short, _) = overheads(dtype, 512);
            let (long, _) = overheads(dtype, 4096);
            assert!(
                long > short,
                "{dtype:?}: no rise at long input ({short} -> {long})"
            );
        }
    }

    #[test]
    fn all_overheads_moderate() {
        for input in INPUTS {
            let (decode, e2e) = overheads(DType::Bf16, input);
            assert!((2.0..15.0).contains(&decode), "input {input}: {decode}%");
            assert!((1.0..15.0).contains(&e2e), "input {input}: e2e {e2e}%");
        }
    }

    #[test]
    fn kv_outgrows_weights_at_long_input() {
        // The crossover driver: at batch 64 and 4096 tokens the KV cache
        // dwarfs the 13.5 GiB of weights.
        let model = zoo::llama2_7b();
        let kv = cllm_workload::kv::kv_bytes_total(&model, 64, 4096, DType::Bf16);
        assert!(kv > 3.0 * model.streamed_weight_bytes(DType::Bf16));
    }
}
