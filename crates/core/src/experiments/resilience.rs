//! Resilience extension: SLO attainment and effective $/Mtoken when the
//! TEE mechanisms the paper measures *fail* in production — attestation
//! rejections, enclave crashes, AEX/TD-exit storms, EPC paging, cGPU
//! bounce-buffer stalls, and spot preemptions at the `cllm-cost` spot
//! rates. Each platform is served twice from the same arrival trace:
//! once fault-free and once under its platform-specific fault schedule,
//! with the event loop recovering via bounded retry, exponential backoff
//! and re-attestation tolls.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, Sweep};
use cllm_cost::{cost_per_mtok, CpuPricing, GpuPricing, SpotParams};
use cllm_serve::faults::{FaultPlan, FaultRates};
use cllm_serve::sim::{simulate_serving_faulted, ServingConfig, ServingNode};
use cllm_serve::slo::{ServingReport, Slo};
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, TeeKind};

/// Fixed schedule seed: every run of the experiment injects the same
/// faults, so the table (and its golden snapshot) is deterministic.
const SCHEDULE_SEED: u64 = 0xFA19;

/// Fault rates are accelerated so a 60 s horizon shows events that at
/// production rates are hours apart; noted in the table.
const RATE_SCALE: f64 = 600.0;

/// The platforms compared, in table order.
pub const PLATFORMS: [TeeKind; 5] = [
    TeeKind::BareMetal,
    TeeKind::Vm,
    TeeKind::Tdx,
    TeeKind::Sgx,
    TeeKind::GpuCc,
];

fn config() -> ServingConfig {
    ServingConfig {
        arrivals: ArrivalProcess::chat(1.0, 42),
        duration_s: 60.0,
        ..ServingConfig::small_test()
    }
}

fn node_for(kind: TeeKind) -> ServingNode {
    match kind {
        TeeKind::GpuNative | TeeKind::GpuCc => ServingNode::Gpu {
            gpu: cllm_hw::presets::h100_nvl(),
            tee: if kind == TeeKind::GpuCc {
                GpuTeeConfig::confidential()
            } else {
                GpuTeeConfig::native()
            },
        },
        TeeKind::Vm => ServingNode::Cpu {
            tee: CpuTeeConfig::vm(),
        },
        TeeKind::Tdx => ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        },
        TeeKind::SevSnp => ServingNode::Cpu {
            tee: CpuTeeConfig::sev_snp(),
        },
        TeeKind::Sgx => ServingNode::Cpu {
            tee: CpuTeeConfig::sgx(),
        },
        TeeKind::BareMetal => ServingNode::Cpu {
            tee: CpuTeeConfig::bare_metal(),
        },
    }
}

fn spot_for(kind: TeeKind) -> SpotParams {
    match kind {
        TeeKind::GpuNative | TeeKind::GpuCc => SpotParams::azure_spot_gpu(),
        _ => SpotParams::gcp_spot(),
    }
}

fn cost_per_hr(kind: TeeKind, cfg: &ServingConfig) -> f64 {
    match kind {
        TeeKind::GpuNative | TeeKind::GpuCc => GpuPricing::azure_ncc_h100().per_hr,
        _ => CpuPricing::gcp_spot_us_east1()
            .instance_cost_per_hr(cfg.target.cores_per_socket * 2, 128.0),
    }
}

/// The serving report for one platform, fault-free or under its
/// platform-specific accelerated fault schedule.
#[must_use]
pub fn report_for(kind: TeeKind, faults: bool) -> ServingReport {
    let cfg = config();
    let plan = if faults {
        // One shared seed: per-kind streams are already independent, so
        // platforms with the same rates see the same event times and the
        // table differences come from platform mechanisms, not luck.
        let rates = FaultRates::for_platform(kind, &spot_for(kind)).scaled(RATE_SCALE);
        FaultPlan::seeded(&rates, cfg.duration_s, SCHEDULE_SEED)
    } else {
        FaultPlan::none()
    };
    simulate_serving_faulted(&cfg, &node_for(kind), &plan)
}

/// [`report_for`] under the fault plan, plus the span trace of the run —
/// the input to the `time_attribution` experiment and the `--trace`
/// export. Same config, plan and seed as `report_for(kind, true)`, so
/// the report halves are byte-identical.
#[must_use]
pub fn traced_report_for(kind: TeeKind) -> (ServingReport, cllm_obs::Trace) {
    let cfg = config();
    let rates = FaultRates::for_platform(kind, &spot_for(kind)).scaled(RATE_SCALE);
    let plan = FaultPlan::seeded(&rates, cfg.duration_s, SCHEDULE_SEED);
    cllm_serve::sim::simulate_serving_traced(&cfg, &node_for(kind), &plan)
}

/// Span trace of the faulted half of the experiment: one lane per
/// platform, in [`PLATFORMS`] order (the fault-free half traces as pure
/// busy/idle and is omitted — the interesting story is recovery). Lanes
/// run through the runner's worker pool; merge order pins the bytes.
#[must_use]
pub fn trace() -> cllm_obs::Trace {
    let lanes = crate::runner::par_map(&PLATFORMS, crate::runner::grid_workers(), |&kind| {
        traced_report_for(kind).1
    });
    cllm_obs::Trace::merge(lanes)
}

/// Effective $/Mtoken realized by a report: the platform's hourly price
/// over its *delivered* goodput, which already carries retry waste and
/// downtime.
#[must_use]
pub fn effective_usd_per_mtok(kind: TeeKind, report: &ServingReport) -> f64 {
    if report.goodput_tps <= 0.0 {
        return 0.0; // degenerate (empty) run: nothing delivered, nothing billed
    }
    cost_per_mtok(cost_per_hr(kind, &config()), report.goodput_tps)
}

/// Run the experiment.
#[must_use]
#[allow(clippy::cast_possible_wrap)] // counts are tiny (≤ arrivals in a 60 s trace)
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "resilience",
        "Serving under injected TEE faults: recovery, availability and effective cost",
        vec![
            Column::str("platform"),
            Column::str("faults"),
            Column::int("completed"),
            Column::int("retries"),
            Column::int("aborted"),
            Column::pct("availability"),
            Column::pct("slo_degraded"),
            Column::float("usd_per_mtok", Unit::UsdPerMtok, 3),
        ],
    );
    let sweep = Sweep::over(grid2(&PLATFORMS, &[false, true]));
    r.extend_rows(sweep.rows(|&(kind, faults)| {
        let report = report_for(kind, faults);
        assert_eq!(
            report.completed + report.aborted,
            report.arrivals,
            "conservation violated on {kind:?}"
        );
        vec![
            Value::str(kind.label()),
            Value::str(if faults { "on" } else { "off" }),
            Value::int(report.completed as i64),
            Value::int(report.retries as i64),
            Value::int(report.aborted as i64),
            Value::pct(report.availability * 100.0),
            Value::pct(report.degraded_slo_attainment(Slo::interactive()) * 100.0),
            Value::float(effective_usd_per_mtok(kind, &report), Unit::UsdPerMtok, 3),
        ]
    }));
    r.note("fault rates accelerated 600x so a 60 s horizon shows events hours apart in production; preemption rates from the cllm-cost spot assumptions");
    r.note("slo_degraded scores over arrivals: aborted requests count as misses; $/Mtoken uses delivered goodput, so retry waste and downtime surface as cost");
    r.note("recovery: bounded retry with exponential backoff; every re-admission and attestation failure pays a fresh attested handshake");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_cost::availability_adjusted_cost_per_mtok;

    #[test]
    fn conservation_holds_on_every_platform() {
        for kind in PLATFORMS {
            for faults in [false, true] {
                let r = report_for(kind, faults);
                assert_eq!(
                    r.completed + r.aborted,
                    r.arrivals,
                    "{kind:?} faults={faults}"
                );
            }
        }
    }

    #[test]
    fn fault_free_rows_are_clean() {
        for kind in PLATFORMS {
            let r = report_for(kind, false);
            assert_eq!(r.retries, 0, "{kind:?}");
            assert_eq!(r.aborted, 0, "{kind:?}");
            assert!((r.availability - 1.0).abs() < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn faults_cost_availability_on_confidential_platforms() {
        // Every confidential platform has TEE-specific mechanisms that
        // fire at the accelerated rates; bare metal only risks preemption.
        for kind in [TeeKind::Tdx, TeeKind::Sgx, TeeKind::GpuCc] {
            let r = report_for(kind, true);
            assert!(r.availability < 1.0, "{kind:?}: no downtime injected");
        }
    }

    #[test]
    fn faults_never_cheapen_serving() {
        for kind in PLATFORMS {
            let clean = report_for(kind, false);
            let faulted = report_for(kind, true);
            let c0 = effective_usd_per_mtok(kind, &clean);
            let c1 = effective_usd_per_mtok(kind, &faulted);
            assert!(
                c1 >= c0 * 0.999,
                "{kind:?}: faulted ${c1}/Mtok cheaper than clean ${c0}/Mtok"
            );
        }
    }

    #[test]
    fn effective_cost_within_availability_worst_case() {
        // Derating clean goodput by realized availability is the
        // *saturated* worst case: a saturated node loses throughput
        // one-for-one with downtime. Our arrival-limited load absorbs
        // part of the downtime in idle gaps, so the realized cost must
        // land between the clean cost and that worst-case projection.
        for kind in [TeeKind::Tdx, TeeKind::Sgx] {
            let clean = report_for(kind, false);
            let faulted = report_for(kind, true);
            let worst = availability_adjusted_cost_per_mtok(
                cost_per_hr(kind, &config()),
                clean.goodput_tps,
                faulted.availability,
            );
            let actual = effective_usd_per_mtok(kind, &faulted);
            let floor = effective_usd_per_mtok(kind, &clean);
            assert!(
                actual >= floor * 0.999 && actual <= worst * 1.02,
                "{kind:?}: actual {actual} outside [{floor}, {worst}]"
            );
        }
    }

    #[test]
    fn table_has_two_rows_per_platform() {
        let r = run();
        assert_eq!(r.rows.len(), PLATFORMS.len() * 2);
    }
}
