//! Figure 3: CPU inference framework comparison on EMR1 (bare metal,
//! single socket, Llama2-7B, 1024 in / 128 out, batch = beam = 1).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::CpuScenario;
use cllm_hw::DType;
use cllm_perf::{CpuTarget, Framework};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;

/// Wall runtime of the figure's fixed request under one framework/dtype,
/// through the simulation cache (Insight 3 re-reads the same points).
#[must_use]
pub fn runtime_s(fw: Framework, dtype: DType) -> f64 {
    let sim = CpuScenario::llama2_7b(RequestSpec::new(1, 1024, 128))
        .with_dtype(dtype)
        .with_target(CpuTarget::emr1_single_socket().with_framework(fw))
        .with_tee(CpuTeeConfig::bare_metal())
        .simulate();
    sim.prefill_s + sim.token_latencies_s.iter().sum::<f64>()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig3",
        "Framework/dtype wall runtime for Llama2-7B, 1024 in / 128 out, batch 1 (EMR1)",
        vec![
            Column::str("framework"),
            Column::str("dtype"),
            Column::float("runtime_s", Unit::Seconds, 2),
            Column::float("vs_ipex", Unit::Speedup, 2),
        ],
    );
    let configs = [
        (Framework::HuggingFace, DType::F32),
        (Framework::HuggingFace, DType::Bf16),
        (Framework::Vllm, DType::F32),
        (Framework::Vllm, DType::Bf16),
        (Framework::LlamaCpp, DType::Bf16), // mixed-precision GGUF
        (Framework::Ipex, DType::Bf16),
    ];
    let ipex = runtime_s(Framework::Ipex, DType::Bf16);
    for (fw, dtype) in configs {
        let t = runtime_s(fw, dtype);
        r.push_row(vec![
            Value::str(fw.label()),
            Value::str(dtype.label()),
            Value::float(t, Unit::Seconds, 2),
            Value::float(t / ipex, Unit::Speedup, 2),
        ]);
    }
    r.note("paper: IPEX fastest; vLLM ~50% slower; HuggingFace ~100% slower");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipex_wins_and_ordering_matches_paper() {
        let ipex = runtime_s(Framework::Ipex, DType::Bf16);
        let vllm = runtime_s(Framework::Vllm, DType::Bf16);
        let hf = runtime_s(Framework::HuggingFace, DType::Bf16);
        let hf32 = runtime_s(Framework::HuggingFace, DType::F32);
        assert!(vllm > ipex * 1.2, "vLLM should be noticeably slower");
        assert!(vllm < ipex * 2.2, "vLLM ~50% slower in the paper");
        assert!(hf > ipex * 1.7, "HF ~100% slower in the paper");
        assert!(hf32 > hf, "f32 slower than bf16");
    }

    #[test]
    fn llamacpp_between_ipex_and_hf() {
        let ipex = runtime_s(Framework::Ipex, DType::Bf16);
        let lcpp = runtime_s(Framework::LlamaCpp, DType::Bf16);
        let hf = runtime_s(Framework::HuggingFace, DType::Bf16);
        assert!(lcpp > ipex * 0.6);
        assert!(lcpp < hf * 1.5);
    }

    #[test]
    fn table_has_six_configs() {
        assert_eq!(super::run().rows.len(), 6);
    }
}
