//! Scale extension: push the unified discrete-event kernel to the
//! million-request regime the paper's saturation insights live in.
//!
//! The paper's core claim (Insights 2–3) is that TEE overhead shrinks
//! toward negligible as batch and load grow — which can only be
//! stress-tested at request volumes a hand-rolled O(n²) event loop
//! cannot reach. This experiment drives `cllm_serve::cluster` (now a
//! thin driver over [`cllm_serve::kernel`]) across a 64-node fleet —
//! 48 confidential-GPU spot nodes and 16 reserved TDX sockets — at two
//! scales:
//!
//! * **smoke** — ~12k requests over a 30 s horizon. Deterministic and
//!   fast enough for the golden table: the row pins arrivals, terminal
//!   states, kernel event counts and simulated goodput byte-for-byte.
//! * **full** — 1M+ requests over a 520 s horizon. Exercised by the
//!   `serve_bench` binary (not the golden table — wall-clock throughput
//!   belongs in `BENCH_serve.json`, which records events/sec against a
//!   pinned floor so later PRs show their perf delta).
//!
//! Only simulated-time quantities appear in the table; wall time never
//! does, so the golden stays machine-independent.

use super::{Column, ExperimentResult, Unit, Value};
use cllm_cost::{SpillPenalty, SpotParams};
use cllm_serve::autoscale::{
    simulate_autoscale_stats, AutoscaleConfig, AutoscaleReport, ControllerConfig, RentalSpec,
};
use cllm_serve::cluster::{
    simulate_cluster_stats, ClusterConfig, ClusterReport, NodeSpec, WaveModel,
};
use cllm_serve::faults::FaultRates;
use cllm_serve::kernel::KernelStats;
use cllm_serve::router::{
    AdmissionPolicy, BreakerConfig, BrownoutConfig, RetryBudget, TieredAdmission,
};
use cllm_serve::scheduler::{KvConfig, KvPolicy};
use cllm_serve::sim::{ServingConfig, ServingNode};
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, TeeKind};
use cllm_workload::trace::TrafficModel;

/// Fixed seed for node fault schedules and the wave model.
const SCHEDULE_SEED: u64 = 0x5CA1E;

/// Light fault acceleration: enough that crash-retry paths run at scale,
/// not so much that faults dominate the event mix.
const RATE_SCALE: f64 = 10.0;

/// The fleet: 48 cGPU spot nodes + 16 reserved TDX sockets.
pub const GPU_NODES: usize = 48;
/// Reserved TDX share of the fleet.
pub const CPU_NODES: usize = 16;

/// The two operating points of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~12k requests / 30 s — golden table and CI smoke.
    Smoke,
    /// 1M+ requests / 520 s — `serve_bench` and `BENCH_serve.json`.
    Full,
}

impl Scale {
    /// Identifier used in tables and BENCH_serve.json.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        }
    }

    /// Mean request arrivals per second at this scale.
    #[must_use]
    pub fn rate_per_s(self) -> f64 {
        match self {
            Scale::Smoke => 400.0,
            Scale::Full => 2000.0,
        }
    }

    /// Arrival horizon, seconds.
    #[must_use]
    pub fn duration_s(self) -> f64 {
        match self {
            Scale::Smoke => 30.0,
            Scale::Full => 520.0,
        }
    }
}

fn cgpu_spot_node(i: u64) -> NodeSpec {
    NodeSpec::new(
        ServingNode::Gpu {
            gpu: cllm_hw::presets::h100_nvl(),
            tee: GpuTeeConfig::confidential(),
        },
        true,
        FaultRates::for_platform(TeeKind::GpuCc, &SpotParams::azure_spot_gpu()).scaled(RATE_SCALE),
        SCHEDULE_SEED.wrapping_add(i),
    )
}

fn tdx_reserved_node(i: u64) -> NodeSpec {
    NodeSpec::new(
        ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        },
        false,
        FaultRates::for_platform(TeeKind::Tdx, &SpotParams::reserved()).scaled(RATE_SCALE),
        SCHEDULE_SEED.wrapping_add(i),
    )
}

/// The 64-node cluster configuration at `scale`.
///
/// Admission is unbounded: the point is raw kernel throughput, and every
/// arrival must reach a terminal state the conservation invariant can
/// check (`completed + aborted == arrivals`, zero rejections).
#[must_use]
pub fn config(scale: Scale) -> ClusterConfig {
    #[allow(clippy::cast_possible_truncation)]
    let nodes = (0..GPU_NODES as u64)
        .map(cgpu_spot_node)
        .chain((0..CPU_NODES as u64).map(|i| tdx_reserved_node(GPU_NODES as u64 + i)))
        .collect();
    ClusterConfig {
        serving: ServingConfig {
            arrivals: ArrivalProcess {
                rate_per_s: scale.rate_per_s(),
                prompt_range: (32, 128),
                output_range: (8, 32),
                seed: 42,
            },
            duration_s: scale.duration_s(),
            ..ServingConfig::small_test()
        },
        nodes,
        admission: AdmissionPolicy::unbounded(),
        breaker: BreakerConfig::default(),
        wave: WaveModel {
            waves_per_hr: 14.0,
            frac: 0.25,
            seed: SCHEDULE_SEED,
        },
        failover: true,
        spill: SpillPenalty::cross_platform(),
    }
}

/// Run the cluster at `scale`, returning the report and the kernel's
/// event counters (the events/sec numerator `serve_bench` times).
#[must_use]
pub fn report(scale: Scale) -> (ClusterReport, KernelStats) {
    simulate_cluster_stats(&config(scale))
}

/// Per-node KV page-pool arena of the paged operating point, bytes.
/// Under one full prompt+output extent at the bench's short chat shapes
/// — small enough that any two concurrent sequences overflow it, so the
/// timed run pays the allocator, eviction and readmission paths
/// continually, not just admission.
pub const PAGED_POOL_BYTES: f64 = 0.0625 * cllm_hw::GIB;

/// The same fleet with every node on the paged-recompute KV policy and
/// a deliberately small page pool (see [`PAGED_POOL_BYTES`]) — the
/// configuration behind the `paged_*` rows of `BENCH_serve.json`.
#[must_use]
pub fn paged_config(scale: Scale) -> ClusterConfig {
    let mut cfg = config(scale);
    cfg.serving.limits.kv_budget_bytes = PAGED_POOL_BYTES;
    cfg.serving.kv = KvConfig {
        policy: KvPolicy::PagedRecompute,
        ..KvConfig::default()
    };
    cfg
}

/// Run the paged operating point at `scale`.
#[must_use]
pub fn paged_report(scale: Scale) -> (ClusterReport, KernelStats) {
    simulate_cluster_stats(&paged_config(scale))
}

/// The flash-crowd autoscale operating point — the configuration behind
/// the `autoscale_*` rows of `BENCH_serve.json`. A deliberately small
/// 8-node cGPU base fleet under generative tiered traffic (diurnal
/// baseline, seeded 8x burst windows) with a reactive controller renting
/// up to 16 extra nodes — undersized so the bursts force scale-ups: the
/// timed run exercises arrival generation, tiered admission, controller
/// ticks, attested cold starts, warm promotions and drain scale-downs on
/// top of the same event kernel the cluster rows measure.
#[must_use]
pub fn autoscale_config(scale: Scale) -> AutoscaleConfig {
    let node = ServingNode::Gpu {
        gpu: cllm_hw::presets::h100_nvl(),
        tee: GpuTeeConfig::confidential(),
    };
    let mut traffic = TrafficModel::flash_crowd(scale.rate_per_s() / 4.0, 8.0, 9);
    traffic.bursts.bursts_per_hr = 240.0;
    traffic.bursts.window_s = 15.0;
    let base_fleet = (0..8u64)
        .map(|i| {
            NodeSpec::new(
                node.clone(),
                false,
                FaultRates::none(),
                SCHEDULE_SEED.wrapping_add(i),
            )
        })
        .collect();
    AutoscaleConfig {
        serving: ServingConfig {
            duration_s: scale.duration_s(),
            ..ServingConfig::small_test()
        },
        traffic,
        base_fleet,
        base_price_per_hr: 3.0,
        rental: RentalSpec {
            node,
            rates: FaultRates::none(),
            price_per_hr: 4.5,
            attest_s: 0.5,
            seed: SCHEDULE_SEED,
        },
        warm_pool: 4,
        controller: ControllerConfig {
            control_interval_s: 2.0,
            max_rented: CPU_NODES,
            ..ControllerConfig::default()
        },
        tiers: TieredAdmission::default(),
        retry: RetryBudget::default(),
        brownout: None::<BrownoutConfig>,
        breaker: BreakerConfig::default(),
        spill: SpillPenalty::cross_platform(),
    }
}

/// Run the autoscale operating point at `scale`.
#[must_use]
pub fn autoscale_report(scale: Scale) -> (AutoscaleReport, KernelStats) {
    simulate_autoscale_stats(&autoscale_config(scale))
}

/// Run the experiment (smoke scale only — see the module docs).
#[must_use]
#[allow(clippy::cast_possible_wrap)]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "serve_scale",
        "Kernel scale smoke: 64-node fleet, deterministic event counts (full scale in BENCH_serve.json)",
        vec![
            Column::str("scale"),
            Column::int("nodes"),
            Column::int("arrivals"),
            Column::int("completed"),
            Column::int("aborted"),
            Column::int("retries"),
            Column::int("spills"),
            Column::int("kernel_events"),
            Column::float("makespan_s", Unit::Seconds, 2),
            Column::float("goodput_tps", Unit::TokensPerSec, 1),
        ],
    );
    let (rep, stats) = report(Scale::Smoke);
    assert_eq!(
        rep.completed + rep.aborted + rep.rejected,
        rep.arrivals,
        "serve_scale conservation violated"
    );
    assert_eq!(rep.rejected, 0, "unbounded admission must not reject");
    r.push_row(vec![
        Value::str(Scale::Smoke.label()),
        Value::int(rep.nodes.len() as i64),
        Value::int(rep.arrivals as i64),
        Value::int(rep.completed as i64),
        Value::int(rep.aborted as i64),
        Value::int(rep.retries as i64),
        Value::int(rep.spills as i64),
        Value::int(stats.events() as i64),
        Value::float(rep.makespan_s, Unit::Seconds, 2),
        Value::float(rep.goodput_tps, Unit::TokensPerSec, 1),
    ]);
    r.note("48 cGPU spot + 16 reserved TDX nodes behind the failover router; admission unbounded so every arrival terminates as completed or aborted");
    r.note("kernel_events sums arrivals, retry deliveries, fault applications, admissions, decode steps, completions and rejections processed by the event kernel");
    r.note("full scale (1M+ requests, 520 s horizon) runs via the serve_bench binary; wall-clock events/sec is pinned in BENCH_serve.json, never in this golden table");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_conservative_and_deterministic() {
        let (a, sa) = report(Scale::Smoke);
        assert!(a.arrivals > 10_000, "smoke must be >10k requests");
        assert_eq!(a.completed + a.aborted + a.rejected, a.arrivals);
        assert_eq!(a.rejected, 0);
        assert_eq!(a.nodes.len(), GPU_NODES + CPU_NODES);
        let (b, sb) = report(Scale::Smoke);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn kernel_events_cover_every_arrival() {
        let (rep, stats) = report(Scale::Smoke);
        assert_eq!(stats.arrivals as usize, rep.arrivals);
        assert_eq!(stats.completions as usize, rep.completed);
        assert_eq!(stats.retries_delivered, rep.retries);
        assert!(
            stats.events() > stats.arrivals,
            "decode/admission events must dominate arrivals"
        );
    }

    #[test]
    fn paged_smoke_preempts_and_stays_deterministic() {
        let (a, sa) = paged_report(Scale::Smoke);
        assert_eq!(a.completed + a.aborted + a.rejected, a.arrivals);
        assert_eq!(a.rejected, 0);
        assert!(
            a.preemptions > 0,
            "a 64 MiB pool under saturation must preempt"
        );
        assert!(sa.preemptions > 0);
        assert_eq!(sa.swap_outs, 0, "recompute policy never swaps");
        let (b, sb) = paged_report(Scale::Smoke);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn full_scale_demands_a_million_requests() {
        // The full operating point must ask for >= 1M arrivals; the run
        // itself happens in serve_bench (release), not in unit tests.
        let cfg = config(Scale::Full);
        let expected = cfg.serving.arrivals.rate_per_s * cfg.serving.duration_s;
        assert!(
            expected >= 1_000_000.0,
            "full scale asks only {expected} requests"
        );
        assert_eq!(cfg.nodes.len(), 64);
    }

    #[test]
    fn table_is_deterministic() {
        let a = run();
        assert_eq!(a.rows.len(), 1);
        let b = run();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
