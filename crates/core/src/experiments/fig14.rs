//! Figure 14: mean evaluation time of RAG systems (BM25, reranked BM25,
//! SBERT) over a BEIR-like benchmark with the document store running
//! bare versus inside TDX (EMR2).

use super::{Column, ExperimentResult, Unit, Value};
use cllm_perf::CpuTarget;
use cllm_rag::eval::evaluate;
use cllm_rag::tee::{eval_time_under_tee, rag_slowdown_factor};
use cllm_rag::{RagConfig, RagPipeline};
use cllm_retrieval::beir::{generate, BeirSpec};
use cllm_retrieval::engine::SearchMode;
use cllm_tee::platform::CpuTeeConfig;

/// Nominal seconds per retrieval work unit on EMR2 bare metal (maps the
/// engine's deterministic work accounting onto wall time so the figure
/// reports milliseconds like the paper).
const S_PER_WORK_UNIT: f64 = 2.0e-4;

/// The three retrieval methods of the figure.
#[must_use]
pub fn methods() -> [SearchMode; 3] {
    [
        SearchMode::Bm25,
        SearchMode::RerankedBm25 { candidates: 50 },
        SearchMode::Sbert,
    ]
}

/// Mean evaluation time per query, bare metal, modeled seconds.
#[must_use]
pub fn bare_eval_time_s(mode: SearchMode) -> f64 {
    let data = generate(&BeirSpec::default());
    let mut p = RagPipeline::new(RagConfig {
        method: mode,
        top_k: 10,
        embedding_dim: 128,
    });
    p.ingest(data.docs.iter().map(|(id, t)| (*id, t.as_str())));
    let report = evaluate(&p, &data);
    report.work_units_per_query * S_PER_WORK_UNIT
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig14",
        "Mean RAG evaluation time per query, bare vs TDX (BEIR-like, EMR2)",
        vec![
            Column::str("method"),
            Column::float("bare_ms", Unit::Millis, 2),
            Column::float("tdx_ms", Unit::Millis, 2),
            Column::pct("tdx_overhead"),
            Column::float("ndcg@10", Unit::None, 3),
        ],
    );
    let target = CpuTarget::emr2_single_socket();
    let tdx = CpuTeeConfig::tdx();
    let data = generate(&BeirSpec::default());
    for mode in methods() {
        let mut p = RagPipeline::new(RagConfig {
            method: mode,
            top_k: 10,
            embedding_dim: 128,
        });
        p.ingest(data.docs.iter().map(|(id, t)| (*id, t.as_str())));
        let quality = evaluate(&p, &data);
        let bare = quality.work_units_per_query * S_PER_WORK_UNIT;
        let teed = eval_time_under_tee(bare, &target, &tdx);
        r.push_row(vec![
            Value::str(mode.label()),
            Value::float(bare * 1e3, Unit::Millis, 2),
            Value::float(teed * 1e3, Unit::Millis, 2),
            Value::pct((teed / bare - 1.0) * 100.0),
            Value::float(quality.ndcg10, Unit::None, 3),
        ]);
    }
    r.note(format!(
        "paper: 6-7% degradation for TDX across the whole RAG pipeline (measured factor {:.3})",
        rag_slowdown_factor(&target, &tdx)
    ));
    r.note("paper: the Elasticsearch database runs entirely inside the TD");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdx_overhead_matches_insight_12() {
        let target = CpuTarget::emr2_single_socket();
        let f = rag_slowdown_factor(&target, &CpuTeeConfig::tdx());
        let pct = (f - 1.0) * 100.0;
        assert!((4.0..9.0).contains(&pct), "RAG TDX overhead {pct}%");
    }

    #[test]
    fn bm25_fastest_method() {
        let bm25 = bare_eval_time_s(SearchMode::Bm25);
        for mode in [
            SearchMode::RerankedBm25 { candidates: 50 },
            SearchMode::Sbert,
        ] {
            assert!(bare_eval_time_s(mode) > bm25, "{}", mode.label());
        }
    }

    #[test]
    fn quality_is_reported_and_reasonable() {
        let r = run();
        for row in &r.rows {
            let ndcg = row[4].as_f64().unwrap();
            assert!(ndcg > 0.4, "{}: nDCG {ndcg}", row[0].format());
        }
    }

    #[test]
    fn same_overhead_for_all_methods() {
        // The TDX factor applies to the whole pipeline uniformly, as the
        // paper observes similar degradation across methods.
        let r = run();
        let overheads: Vec<f64> = r.rows.iter().map(|row| row[3].as_f64().unwrap()).collect();
        let spread = overheads
            .iter()
            .fold(0.0f64, |m, &o| m.max((o - overheads[0]).abs()));
        assert!(spread < 1.0, "spread {spread}");
    }
}
