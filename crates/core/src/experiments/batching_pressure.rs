//! Paged-KV extension: the continuous-vs-static batching crossover under
//! TEE memory pressure. Every platform serves the same arrival trace
//! from a deliberately small KV page pool at three batch ceilings, under
//! four KV regimes: **static** batching (conservative reservation, batch
//! runs to completion), **conservative** continuous batching (reserve
//! the full prompt+output extent up front, never evict), **recompute**
//! (paged; drop a victim's pages on pressure, re-prefill at
//! readmission), and **swap** (paged; page the victim's KV out through
//! the platform's priced path — EPC paging on SGX, MEE-derated copies on
//! TDX, the CC bounce buffer on cGPU — and stall on swap-in).
//!
//! The SGX row runs with an EPC sized just above the weights, so paged
//! residency beyond the protected budget also pays the per-step paging
//! stall — the cliff the paper measures for CPU TEEs with bounded
//! protected memory.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid3, Sweep};
use cllm_hw::DType;
use cllm_serve::faults::FaultPlan;
use cllm_serve::scheduler::{KvConfig, KvPolicy, SchedulerLimits};
use cllm_serve::sim::{simulate_serving_faulted, ServingConfig, ServingNode};
use cllm_serve::slo::percentile_of;
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig};
use cllm_workload::zoo;

/// Fixed arrival seed: the trace (and the golden snapshot) is pinned.
const SCHEDULE_SEED: u64 = 0xBA7C;

/// KV page-pool arena, bytes. Small on purpose: roughly ten full
/// prompt+output extents, so the conservative policy hits head-of-line
/// blocking well below the largest batch ceiling while paged admission
/// (prompt pages only) keeps filling the batch and must evict on growth.
const POOL_BYTES: f64 = 1.5 * cllm_hw::GIB;

/// Headroom the small-EPC SGX arm leaves above the streamed weights.
/// Less than the pool, so paged residency can overflow the protected
/// budget and price the per-step paging stall.
const SGX_KV_HEADROOM_BYTES: f64 = 0.75 * cllm_hw::GIB;

/// The platforms compared, in table order.
pub const PLATFORMS: [&str; 4] = ["bare-metal", "tdx", "sgx-small-epc", "cgpu-h100"];

/// The KV regimes compared, in table order.
pub const POLICIES: [&str; 4] = ["static", "conservative", "recompute", "swap"];

/// Batch ceilings swept per (platform, policy).
pub const BATCHES: [usize; 3] = [4, 12, 28];

/// SGX with the EPC shrunk to weights + [`SGX_KV_HEADROOM_BYTES`]: the
/// machine still loads the model, but KV residency is the scarce
/// resource (production EPCs fit Llama2-7B many times over; the small
/// arm reproduces the pressure regime at experiment scale).
fn sgx_small_epc() -> CpuTeeConfig {
    let mut tee = CpuTeeConfig::sgx();
    let weights = zoo::llama2_7b().weight_bytes(DType::Bf16);
    if let Some(sgx) = tee.sgx.as_mut() {
        sgx.epc_bytes = weights + SGX_KV_HEADROOM_BYTES;
    }
    tee
}

fn node_for(platform: &str) -> ServingNode {
    match platform {
        "bare-metal" => ServingNode::Cpu {
            tee: CpuTeeConfig::bare_metal(),
        },
        "tdx" => ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        },
        "sgx-small-epc" => ServingNode::Cpu {
            tee: sgx_small_epc(),
        },
        "cgpu-h100" => ServingNode::Gpu {
            gpu: cllm_hw::presets::h100_nvl(),
            tee: GpuTeeConfig::confidential(),
        },
        other => unreachable!("unknown platform {other}"),
    }
}

fn kv_for(policy: &str) -> KvConfig {
    match policy {
        "static" => KvConfig {
            static_batching: true,
            ..KvConfig::default()
        },
        "conservative" => KvConfig::default(),
        "recompute" => KvConfig {
            policy: KvPolicy::PagedRecompute,
            ..KvConfig::default()
        },
        "swap" => KvConfig {
            policy: KvPolicy::PagedSwap,
            ..KvConfig::default()
        },
        other => unreachable!("unknown policy {other}"),
    }
}

/// The shared serving configuration: decode-heavy shapes (outputs longer
/// than prompts) so the gap between reserving the full extent and
/// growing page-by-page is what the table measures.
#[must_use]
pub fn config(policy: &str, batch: usize) -> ServingConfig {
    ServingConfig {
        limits: SchedulerLimits {
            max_batch: batch,
            kv_budget_bytes: POOL_BYTES,
        },
        kv: kv_for(policy),
        arrivals: ArrivalProcess {
            rate_per_s: 6.0,
            prompt_range: (64, 128),
            output_range: (128, 256),
            seed: SCHEDULE_SEED,
        },
        duration_s: 20.0,
        ..ServingConfig::small_test()
    }
}

/// One fault-free run of the grid point.
#[must_use]
pub fn report_for(platform: &str, policy: &str, batch: usize) -> cllm_serve::slo::ServingReport {
    let cfg = config(policy, batch);
    simulate_serving_faulted(&cfg, &node_for(platform), &FaultPlan::none())
}

/// Smallest swept batch where paged-recompute out-delivers conservative
/// reservation by more than 2% goodput on `platform` — the batch-size
/// crossover the pool forces. `None` if conservative holds the sweep.
fn crossover_batch(rows: &[(String, String, usize, f64)], platform: &str) -> Option<usize> {
    BATCHES.into_iter().find(|&b| {
        let g = |policy: &str| {
            rows.iter()
                .find(|(pf, po, ba, _)| pf == platform && po == policy && *ba == b)
                .map_or(0.0, |&(_, _, _, g)| g)
        };
        g("recompute") > g("conservative") * 1.02
    })
}

/// Run the experiment.
#[must_use]
#[allow(clippy::cast_possible_wrap)] // counts are tiny (≤ arrivals in a 20 s trace)
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "batching_pressure",
        "Paged KV under TEE memory pressure: policies, preemption and the batching crossover",
        vec![
            Column::str("platform"),
            Column::str("policy"),
            Column::int("batch"),
            Column::int("completed"),
            Column::float("goodput_tps", Unit::TokensPerSec, 1),
            Column::float("ttft_p99_s", Unit::Seconds, 3),
            Column::int("preemptions"),
            Column::float("swap_gib", Unit::None, 2),
        ],
    );
    let sweep = Sweep::over(grid3(&PLATFORMS, &POLICIES, &BATCHES));
    let rows = sweep.rows(|&(platform, policy, batch)| {
        let report = report_for(platform, policy, batch);
        assert_eq!(
            report.completed + report.aborted,
            report.arrivals,
            "conservation violated on {platform}/{policy}/b{batch}"
        );
        let ttft: Vec<f64> = report.records.iter().map(|rec| rec.ttft_s).collect();
        let ttft_p99 = if ttft.is_empty() {
            0.0
        } else {
            percentile_of(&ttft, 0.99)
        };
        vec![
            Value::str(platform),
            Value::str(policy),
            Value::int(batch as i64),
            Value::int(report.completed as i64),
            Value::float(report.goodput_tps, Unit::TokensPerSec, 1),
            Value::float(ttft_p99, Unit::Seconds, 3),
            Value::uint(report.preemptions),
            Value::float(
                (report.swap_out_bytes + report.swap_in_bytes) / cllm_hw::GIB,
                Unit::None,
                2,
            ),
        ]
    });
    // Crossover notes read the goodput cells back out of the rows.
    let goodputs: Vec<(String, String, usize, f64)> = sweep
        .points()
        .iter()
        .zip(&rows)
        .map(|(&(pf, po, ba), row)| {
            let g = match row[4] {
                Value::Float { value, .. } => value,
                _ => 0.0,
            };
            (pf.to_owned(), po.to_owned(), ba, g)
        })
        .collect();
    r.extend_rows(rows);
    for platform in PLATFORMS {
        match crossover_batch(&goodputs, platform) {
            Some(b) => r.note(format!(
                "{platform}: paged-recompute overtakes conservative reservation from batch {b}"
            )),
            None => r.note(format!(
                "{platform}: conservative reservation holds across the swept batches"
            )),
        }
    }
    r.note("pool fixed at 1.5 GiB; conservative admission reserves prompt+output up front, paged admission reserves prompt pages and grows page-by-page, evicting tail-first on pressure");
    r.note("sgx-small-epc shrinks the EPC to weights + 0.75 GiB, so paged residency past the protected budget pays the per-step EPC paging stall and swap evictions pay the paging path");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_and_determinism_hold_per_policy() {
        for policy in POLICIES {
            let a = report_for("tdx", policy, 12);
            let b = report_for("tdx", policy, 12);
            assert_eq!(a, b, "{policy}: nondeterministic");
            assert_eq!(a.completed + a.aborted, a.arrivals, "{policy}");
            assert_eq!(a.aborted, 0, "{policy}: fault-free run must not abort");
        }
    }

    #[test]
    fn conservative_arms_never_preempt_or_swap() {
        for policy in ["static", "conservative"] {
            let r = report_for("tdx", policy, 28);
            assert_eq!(r.preemptions, 0, "{policy}");
            assert_eq!(r.swap_out_bytes, 0.0, "{policy}");
            assert_eq!(r.swap_in_bytes, 0.0, "{policy}");
        }
    }

    #[test]
    fn pool_pressure_forces_preemptions_at_wide_batch() {
        // 28 sequences of decode-heavy growth cannot hold 1.5 GiB of
        // pages: both paged policies must evict, and only the swap
        // policy moves bytes.
        for policy in ["recompute", "swap"] {
            let r = report_for("tdx", policy, 28);
            assert!(r.preemptions > 0, "{policy}: no pressure at batch 28");
        }
        let swap = report_for("tdx", "swap", 28);
        assert!(swap.swap_out_bytes > 0.0);
        assert!(swap.swap_in_bytes > 0.0);
        let recompute = report_for("tdx", "recompute", 28);
        assert_eq!(recompute.swap_out_bytes, 0.0);
    }

    #[test]
    fn paged_beats_conservative_at_the_wide_end() {
        // The crossover the experiment exists to show: with the pool an
        // order of magnitude under 28 full extents, conservative
        // reservation head-of-line blocks while paged admission keeps
        // the batch full.
        let conservative = report_for("tdx", "conservative", 28);
        let paged = report_for("tdx", "recompute", 28);
        assert!(
            paged.goodput_tps > conservative.goodput_tps,
            "paged {} <= conservative {}",
            paged.goodput_tps,
            conservative.goodput_tps
        );
    }

    #[test]
    fn static_batching_trails_continuous() {
        let fixed = report_for("tdx", "static", 12);
        let cont = report_for("tdx", "conservative", 12);
        assert!(
            fixed.goodput_tps <= cont.goodput_tps * 1.001,
            "static {} beats continuous {}",
            fixed.goodput_tps,
            cont.goodput_tps
        );
    }

    #[test]
    fn table_covers_the_full_grid() {
        let r = run();
        assert_eq!(
            r.rows.len(),
            PLATFORMS.len() * POLICIES.len() * BATCHES.len()
        );
    }
}
