//! Figure 11: GPU throughput as a function of batch and input sizes;
//! cGPU overheads shrink as both grow (Insight 10).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, GpuScenario, Sweep};
use cllm_perf::{throughput_overhead_pct, GpuSimResult};
use cllm_workload::phase::RequestSpec;
use std::sync::Arc;

fn scenario(batch: u64, input: u64) -> GpuScenario {
    GpuScenario::llama2_7b(RequestSpec::new(batch, input, 128))
}

fn sim(confidential: bool, batch: u64, input: u64) -> Arc<GpuSimResult> {
    let s = scenario(batch, input);
    if confidential { s } else { s.baseline() }.simulate()
}

/// cGPU generation-throughput overhead at one (batch, input) point.
#[must_use]
pub fn overhead(batch: u64, input: u64) -> f64 {
    scenario(batch, input).e2e_overhead()
}

const BATCHES: [u64; 4] = [1, 8, 32, 128];
const INPUTS: [u64; 3] = [128, 512, 1024];

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig11",
        "H100 cGPU throughput and overhead vs batch and input size (Llama2-7B, vLLM)",
        vec![
            Column::int("batch"),
            Column::int("input"),
            Column::float("gpu_tps", Unit::TokensPerSec, 0),
            Column::float("cgpu_tps", Unit::TokensPerSec, 0),
            Column::pct("cc_overhead"),
        ],
    );
    let sweep = Sweep::over(grid2(&BATCHES, &INPUTS));
    r.extend_rows(sweep.rows(|&(batch, input)| {
        let raw = sim(false, batch, input);
        let cc = sim(true, batch, input);
        vec![
            Value::uint(batch),
            Value::uint(input),
            Value::float(raw.e2e_tps, Unit::TokensPerSec, 0),
            Value::float(cc.e2e_tps, Unit::TokensPerSec, 0),
            Value::pct(throughput_overhead_pct(raw.e2e_tps, cc.e2e_tps)),
        ]
    }));
    r.note(
        "paper: cGPU overheads oscillate between 7.5% and 4.4%, shrinking as batch and input grow",
    );
    r.note("paper: GPUs show lower noise than CPU TEEs — HBM is not encrypted");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_band_matches_paper() {
        for batch in BATCHES {
            for input in INPUTS {
                let o = overhead(batch, input);
                assert!((2.0..9.5).contains(&o), "b{batch}/in{input}: {o}%");
            }
        }
    }

    #[test]
    fn overhead_shrinks_with_batch() {
        assert!(overhead(128, 512) < overhead(1, 512));
    }

    #[test]
    fn overhead_shrinks_with_input() {
        assert!(overhead(8, 1024) < overhead(8, 128) + 0.5);
    }

    #[test]
    fn gpu_throughput_scales_with_batch() {
        let t1 = sim(true, 1, 128).e2e_tps;
        let t128 = sim(true, 128, 128).e2e_tps;
        assert!(t128 > 10.0 * t1);
    }

    #[test]
    fn gpu_noise_lower_than_cpu_tee() {
        // Section V-C: cGPUs show "lower noise" than CPU TEEs.
        use crate::scenario::CpuScenario;
        let gpu = sim(true, 8, 512);
        let cpu = CpuScenario::llama2_7b(RequestSpec::new(8, 512, 128)).simulate();
        let gpu_cv = gpu.summary.std / gpu.summary.mean;
        let cpu_cv = cpu.summary.std / cpu.summary.mean;
        assert!(gpu_cv < cpu_cv, "gpu cv {gpu_cv} !< cpu cv {cpu_cv}");
    }
}
