//! Figure 5: Llama2-70B on two sockets — TDX versus a NUMA-bound VM
//! (`VM B`) and an unbound VM (`VM NB`). The 70B model does not fit in
//! one socket's memory, so placement quality dominates (Insight 6).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::CpuScenario;
use cllm_perf::{overhead_pct, CpuTarget, SimResult};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;
use std::sync::Arc;

/// The figure's operating point under one TEE configuration, through the
/// simulation cache (Insight 6 re-reads the same points).
#[must_use]
pub fn sim(tee: &CpuTeeConfig) -> Arc<SimResult> {
    CpuScenario::llama2_7b(RequestSpec::new(1, 1024, 64))
        .with_model(zoo::llama2_70b())
        .with_target(CpuTarget::emr1_dual_socket())
        .with_tee(tee.clone())
        .simulate()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig5",
        "Llama2-70B on two EMR1 sockets: NUMA binding quality",
        vec![
            Column::str("config"),
            Column::float("latency_ms", Unit::Millis, 0),
            Column::pct("lat_vs_vm_bound"),
            Column::float("throughput_tps", Unit::TokensPerSec, 2),
        ],
    );
    let vm_b = sim(&CpuTeeConfig::vm());
    for (name, res) in [
        ("VM B", Arc::clone(&vm_b)),
        ("TDX", sim(&CpuTeeConfig::tdx())),
        ("VM NB", sim(&CpuTeeConfig::vm_unbound())),
    ] {
        r.push_row(vec![
            Value::str(name),
            Value::float(res.summary.mean * 1e3, Unit::Millis, 0),
            Value::pct(overhead_pct(vm_b.summary.mean, res.summary.mean)),
            Value::float(res.decode_tps, Unit::TokensPerSec, 2),
        ]);
    }
    r.note("paper: TDX's KVM driver ignores QEMU NUMA bindings (Insight 6)");
    r.note("paper: the 200 ms service level is no longer upheld for 70B on 2 sockets");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_vm_b_tdx_vm_nb() {
        let vm_b = sim(&CpuTeeConfig::vm()).summary.mean;
        let tdx = sim(&CpuTeeConfig::tdx()).summary.mean;
        let vm_nb = sim(&CpuTeeConfig::vm_unbound()).summary.mean;
        assert!(vm_b < tdx, "VM B must beat TDX");
        assert!(tdx < vm_nb, "TDX must beat fully unbound VM");
    }

    #[test]
    fn service_level_violated_for_70b() {
        // Section IV-A1: "the 200ms service level is no longer upheld".
        assert!(sim(&CpuTeeConfig::tdx()).summary.mean > 0.2);
    }

    #[test]
    fn tdx_overhead_is_considerable() {
        let vm_b = sim(&CpuTeeConfig::vm()).summary.mean;
        let tdx = sim(&CpuTeeConfig::tdx()).summary.mean;
        let ovh = overhead_pct(vm_b, tdx);
        assert!(
            (10.0..120.0).contains(&ovh),
            "TDX-over-VM-B latency overhead {ovh}%"
        );
    }
}
