//! Section IV-A sub-NUMA clustering ablation: TEE drivers do not support
//! sub-NUMA domains, so enabling SNC inflates TDX overhead from ~5% to
//! ~42% — which is why the paper disables it.

use super::{Column, ExperimentResult, Value};
use crate::scenario::CpuScenario;
use cllm_hw::SubNumaClustering;
use cllm_perf::CpuTarget;
use cllm_workload::phase::RequestSpec;

/// TDX throughput overhead with a given SNC setting.
#[must_use]
pub fn overhead(snc: SubNumaClustering) -> f64 {
    let mut target = CpuTarget::emr2_single_socket();
    target.topology.snc = snc;
    CpuScenario::llama2_7b(RequestSpec::new(6, 1024, 128).with_beam(4))
        .with_target(target)
        .thr_overhead()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "snc",
        "Sub-NUMA clustering ablation: TDX overhead with SNC off/on (EMR2)",
        vec![Column::str("snc"), Column::pct("tdx_overhead")],
    );
    for (name, snc) in [
        ("off", SubNumaClustering::Off),
        ("SNC-2", SubNumaClustering::Snc2),
    ] {
        r.push_row(vec![Value::str(name), Value::pct(overhead(snc))]);
    }
    r.note("paper: enabling sub-NUMA domains increased overhead more than eight times, from ~5% to ~42%; we therefore disable SNC");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snc_blows_up_tee_overhead() {
        let off = overhead(SubNumaClustering::Off);
        let on = overhead(SubNumaClustering::Snc2);
        assert!((4.0..12.0).contains(&off), "SNC off: {off}%");
        assert!((25.0..60.0).contains(&on), "SNC on: {on}%");
        assert!(on > 3.0 * off, "SNC must multiply overhead: {off} -> {on}");
    }
}
