//! B100 (Blackwell) projection — Section V-D3: "While B100s address these
//! issues [HBM and NVLink encryption], we expect that they will add a
//! non-negligible overhead to H100s' results, since we identified memory
//! encryption as a significant cost in CPUs."
//!
//! The projection applies the CPU-calibrated memory-encryption derate to
//! the B100's HBM path and compares the resulting CC overhead with the
//! H100's (which leaves HBM unencrypted).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{GpuScenario, Sweep};
use cllm_hw::GpuModel;
use cllm_workload::phase::RequestSpec;

fn scenario(gpu: &GpuModel, batch: u64, input: u64) -> GpuScenario {
    GpuScenario::llama2_7b(RequestSpec::new(batch, input, 128)).with_gpu(gpu.clone())
}

/// CC overhead on the H100 at one shape.
#[must_use]
pub fn h100_overhead(batch: u64, input: u64) -> f64 {
    scenario(&cllm_hw::presets::h100_nvl(), batch, input).e2e_overhead()
}

/// Projected CC overhead on the B100 at one shape.
#[must_use]
pub fn b100_overhead(batch: u64, input: u64) -> f64 {
    scenario(&cllm_hw::presets::b100(), batch, input).e2e_overhead()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "b100",
        "Blackwell projection: CC overhead with encrypted HBM vs H100",
        vec![
            Column::int("batch"),
            Column::int("input"),
            Column::pct("h100_cc_overhead"),
            Column::pct("b100_cc_overhead"),
            Column::float("b100_speedup", Unit::Speedup, 2),
        ],
    );
    let h100 = cllm_hw::presets::h100_nvl();
    let b100 = cllm_hw::presets::b100();
    let sweep = Sweep::over(vec![(1u64, 128u64), (8, 512), (32, 512), (128, 1024)]);
    r.extend_rows(sweep.rows(|&(batch, input)| {
        let h = scenario(&h100, batch, input).simulate();
        let b = scenario(&b100, batch, input).simulate();
        vec![
            Value::uint(batch),
            Value::uint(input),
            Value::pct(h100_overhead(batch, input)),
            Value::pct(b100_overhead(batch, input)),
            Value::float(b.e2e_tps / h.e2e_tps, Unit::Speedup, 2),
        ]
    }));
    r.note("paper expectation: B100's HBM/NVLink encryption will add non-negligible overhead over H100 results");
    r.note("the projection reuses the memory-encryption derate calibrated on the CPU side");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b100_cc_costs_more_than_h100_cc_at_memory_bound_shapes() {
        // At large batch/input the workload is HBM-bound, so B100's
        // encrypted HBM shows while H100's unencrypted HBM does not.
        let h = h100_overhead(128, 1024);
        let b = b100_overhead(128, 1024);
        assert!(b > h + 1.0, "B100 {b}% !> H100 {h}%");
    }

    #[test]
    fn b100_still_faster_in_absolute_terms() {
        let h = scenario(&cllm_hw::presets::h100_nvl(), 32, 512).simulate();
        let b = scenario(&cllm_hw::presets::b100(), 32, 512).simulate();
        assert!(b.e2e_tps > h.e2e_tps);
    }

    #[test]
    fn overheads_stay_single_digit() {
        for (batch, input) in [(1u64, 128u64), (32, 512), (128, 1024)] {
            let b = b100_overhead(batch, input);
            assert!((2.0..15.0).contains(&b), "b{batch}/in{input}: {b}%");
        }
    }
}
