//! B100 (Blackwell) projection — Section V-D3: "While B100s address these
//! issues [HBM and NVLink encryption], we expect that they will add a
//! non-negligible overhead to H100s' results, since we identified memory
//! encryption as a significant cost in CPUs."
//!
//! The projection applies the CPU-calibrated memory-encryption derate to
//! the B100's HBM path and compares the resulting CC overhead with the
//! H100's (which leaves HBM unencrypted).

use super::{num, pct, ExperimentResult};
use cllm_hw::{DType, GpuModel};
use cllm_perf::{simulate_gpu, throughput_overhead_pct};
use cllm_tee::platform::GpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;

fn cc_overhead(gpu: &GpuModel, batch: u64, input: u64) -> f64 {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(batch, input, 128);
    let raw = simulate_gpu(&model, &req, DType::Bf16, gpu, &GpuTeeConfig::native());
    let cc = simulate_gpu(
        &model,
        &req,
        DType::Bf16,
        gpu,
        &GpuTeeConfig::confidential(),
    );
    throughput_overhead_pct(raw.e2e_tps, cc.e2e_tps)
}

/// CC overhead on the H100 at one shape.
#[must_use]
pub fn h100_overhead(batch: u64, input: u64) -> f64 {
    cc_overhead(&cllm_hw::presets::h100_nvl(), batch, input)
}

/// Projected CC overhead on the B100 at one shape.
#[must_use]
pub fn b100_overhead(batch: u64, input: u64) -> f64 {
    cc_overhead(&cllm_hw::presets::b100(), batch, input)
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "b100",
        "Blackwell projection: CC overhead with encrypted HBM vs H100",
        &[
            "batch",
            "input",
            "h100_cc_overhead",
            "b100_cc_overhead",
            "b100_speedup",
        ],
    );
    let h100 = cllm_hw::presets::h100_nvl();
    let b100 = cllm_hw::presets::b100();
    let model = zoo::llama2_7b();
    for (batch, input) in [(1u64, 128u64), (8, 512), (32, 512), (128, 1024)] {
        let req = RequestSpec::new(batch, input, 128);
        let h = simulate_gpu(
            &model,
            &req,
            DType::Bf16,
            &h100,
            &GpuTeeConfig::confidential(),
        );
        let b = simulate_gpu(
            &model,
            &req,
            DType::Bf16,
            &b100,
            &GpuTeeConfig::confidential(),
        );
        r.push_row(vec![
            batch.to_string(),
            input.to_string(),
            pct(h100_overhead(batch, input)),
            pct(b100_overhead(batch, input)),
            format!("{}x", num(b.e2e_tps / h.e2e_tps, 2)),
        ]);
    }
    r.note("paper expectation: B100's HBM/NVLink encryption will add non-negligible overhead over H100 results");
    r.note("the projection reuses the memory-encryption derate calibrated on the CPU side");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b100_cc_costs_more_than_h100_cc_at_memory_bound_shapes() {
        // At large batch/input the workload is HBM-bound, so B100's
        // encrypted HBM shows while H100's unencrypted HBM does not.
        let h = h100_overhead(128, 1024);
        let b = b100_overhead(128, 1024);
        assert!(b > h + 1.0, "B100 {b}% !> H100 {h}%");
    }

    #[test]
    fn b100_still_faster_in_absolute_terms() {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(32, 512, 64);
        let h = simulate_gpu(
            &model,
            &req,
            DType::Bf16,
            &cllm_hw::presets::h100_nvl(),
            &GpuTeeConfig::confidential(),
        );
        let b = simulate_gpu(
            &model,
            &req,
            DType::Bf16,
            &cllm_hw::presets::b100(),
            &GpuTeeConfig::confidential(),
        );
        assert!(b.e2e_tps > h.e2e_tps);
    }

    #[test]
    fn overheads_stay_single_digit() {
        for (batch, input) in [(1u64, 128u64), (32, 512), (128, 1024)] {
            let b = b100_overhead(batch, input);
            assert!((2.0..15.0).contains(&b), "b{batch}/in{input}: {b}%");
        }
    }
}
