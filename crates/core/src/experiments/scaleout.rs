//! Scale-out analysis — Section V-D4: confidential H100 instances lack
//! RDMA/GPUDirect, so all inter-GPU data detours through the CPU at
//! ~3 GB/s (vs 40 GB/s non-confidential), crippling tensor-parallel
//! throughput; CPUs with transparently-encrypted UPI scale up instead.
//!
//! We run Llama2-70B (which fits neither one GPU nor one socket) on
//! 2x H100 (native and CC) and on a dual-socket TDX host.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{CpuScenario, Sweep};
use cllm_hw::DType;
use cllm_perf::{simulate_multi_gpu, CpuTarget};
use cllm_tee::platform::GpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;

/// Decode throughput of 2x H100 at one batch size.
///
/// Multi-GPU simulation has no memoized variant (the tensor-parallel
/// sweep is cheap and nothing else shares its points), so this calls
/// [`simulate_multi_gpu`] directly.
#[must_use]
pub fn dual_gpu_tps(confidential: bool, batch: u64) -> f64 {
    let cfg = if confidential {
        GpuTeeConfig::confidential()
    } else {
        GpuTeeConfig::native()
    };
    simulate_multi_gpu(
        &zoo::llama2_70b(),
        &RequestSpec::new(batch, 512, 64),
        DType::Bf16,
        &cllm_hw::presets::h100_nvl(),
        &cfg,
        2,
    )
    .decode_tps
}

/// Decode throughput of dual-socket TDX at one batch size.
#[must_use]
pub fn dual_socket_tdx_tps(batch: u64) -> f64 {
    CpuScenario::llama2_7b(RequestSpec::new(batch, 512, 64))
        .with_model(zoo::llama2_70b())
        .with_target(CpuTarget::emr2_dual_socket())
        .simulate()
        .decode_tps
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "scaleout",
        "Llama2-70B scale-out: 2x H100 (native/CC) vs dual-socket TDX",
        vec![
            Column::int("batch"),
            Column::float("2xGPU_native_tps", Unit::TokensPerSec, 1),
            Column::float("2xGPU_cc_tps", Unit::TokensPerSec, 1),
            Column::pct("cc_scaleout_penalty"),
            Column::float("2socket_TDX_tps", Unit::TokensPerSec, 2),
        ],
    );
    let sweep = Sweep::over([1u64, 8, 32, 64]);
    r.extend_rows(sweep.rows(|&batch| {
        let native = dual_gpu_tps(false, batch);
        let cc = dual_gpu_tps(true, batch);
        vec![
            Value::uint(batch),
            Value::float(native, Unit::TokensPerSec, 1),
            Value::float(cc, Unit::TokensPerSec, 1),
            Value::pct((native / cc - 1.0) * 100.0),
            Value::float(dual_socket_tdx_tps(batch), Unit::TokensPerSec, 2),
        ]
    }));
    r.note("paper: cGPU instances cap inter-GPU traffic at ~3 GB/s (no RDMA/GPUDirect), costly for tensor/pipeline parallelism");
    r.note("paper: CPU sockets scale up with transparently encrypted UPI; network protection (IPsec) would cost up to 90% on top of either platform for scale-out");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_scaleout_penalty_grows_with_batch() {
        // More tokens per step -> more allreduce bytes through the 3 GB/s
        // host detour.
        let p1 = dual_gpu_tps(false, 1) / dual_gpu_tps(true, 1);
        let p64 = dual_gpu_tps(false, 64) / dual_gpu_tps(true, 64);
        assert!(p64 > p1, "penalty must grow: {p1:.2}x -> {p64:.2}x");
        assert!(p64 > 1.5, "large-batch CC scale-out penalty only {p64:.2}x");
    }

    #[test]
    fn cc_scaleout_narrows_gpu_advantage() {
        // Section V-D4: "We expect this to lower the advantage of GPUs
        // over CPUs."
        let batch = 64;
        let cpu = dual_socket_tdx_tps(batch);
        let native_adv = dual_gpu_tps(false, batch) / cpu;
        let cc_adv = dual_gpu_tps(true, batch) / cpu;
        assert!(
            cc_adv < native_adv * 0.7,
            "native {native_adv:.1}x vs cc {cc_adv:.1}x"
        );
    }

    #[test]
    fn native_dual_gpu_beats_cpu() {
        assert!(dual_gpu_tps(false, 8) > 3.0 * dual_socket_tdx_tps(8));
    }
}
