//! Cluster-resilience extension: does a fleet of cheap spot cGPU nodes
//! behind a failover router beat reserved CPU TEEs when correlated
//! preemption waves hit?
//!
//! Three fleets serve the *same* arrival trace under the *same* wave
//! seed through `cllm_serve::cluster`:
//!
//! * **cgpu-spot** — 4 × confidential H100 on Azure spot: cheap and
//!   fast, but bounce-buffer stalls, spot preemptions, and every wave
//!   hits 3 of the 4 nodes at once;
//! * **tdx-reserved** — 4 × TDX sockets on reserved capacity: immune to
//!   preemption (waves only touch spot nodes), but an order of
//!   magnitude slower per node;
//! * **mixed-failover** — 2 × cGPU spot + 2 × TDX reserved with
//!   failover: wave victims spill onto the surviving CPU TEEs, paying
//!   the cross-platform [`SpillPenalty`] (re-quantisation + slower
//!   prefill) but keeping the request alive.
//!
//! The table reports the three terminal states (conservation is
//! `completed + aborted + rejected == arrivals`), availability, the
//! p99 TTFT tail, delivered goodput, and the effective $/Mtok of the
//! whole fleet (summed hourly price over delivered goodput).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::Sweep;
use cllm_cost::{cost_per_mtok, CpuPricing, GpuPricing, SpillPenalty, SpotParams};
use cllm_serve::cluster::{simulate_cluster, ClusterConfig, ClusterReport, NodeSpec, WaveModel};
use cllm_serve::faults::FaultRates;
use cllm_serve::router::{AdmissionPolicy, BreakerConfig};
use cllm_serve::sim::{ServingConfig, ServingNode};
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, TeeKind};

/// Fixed seed for node fault schedules and the wave model: every run
/// pins the same incident history, so the table is golden-stable.
const SCHEDULE_SEED: u64 = 0xC1A5;

/// Fault rates accelerated as in the `resilience` experiment, so a 60 s
/// horizon shows events that are hours apart in production.
const RATE_SCALE: f64 = 600.0;

/// Correlated preemption waves: two per simulated minute at the
/// accelerated scale, each reclaiming 3/4 of the spot pool.
const WAVES_PER_HR: f64 = 120.0;
const WAVE_FRAC: f64 = 0.75;

/// The fleet shapes compared, in table order.
pub const FLEETS: [&str; 3] = ["cgpu-spot", "tdx-reserved", "mixed-failover"];

fn config() -> ServingConfig {
    ServingConfig {
        // Heavier-tailed than `ArrivalProcess::chat`: long generations
        // keep requests resident across preemption waves, so failover
        // (retries, spills) is exercised rather than vacuous.
        arrivals: ArrivalProcess {
            rate_per_s: 2.0,
            prompt_range: (64, 512),
            output_range: (64, 384),
            seed: 42,
        },
        duration_s: 60.0,
        ..ServingConfig::small_test()
    }
}

fn cgpu_spot_node(i: u64) -> NodeSpec {
    NodeSpec::new(
        ServingNode::Gpu {
            gpu: cllm_hw::presets::h100_nvl(),
            tee: GpuTeeConfig::confidential(),
        },
        true,
        FaultRates::for_platform(TeeKind::GpuCc, &SpotParams::azure_spot_gpu()).scaled(RATE_SCALE),
        SCHEDULE_SEED.wrapping_add(i),
    )
}

fn tdx_reserved_node(i: u64) -> NodeSpec {
    NodeSpec::new(
        ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        },
        false,
        FaultRates::for_platform(TeeKind::Tdx, &SpotParams::reserved()).scaled(RATE_SCALE),
        SCHEDULE_SEED.wrapping_add(i),
    )
}

/// The cluster configuration for one fleet shape.
///
/// # Panics
///
/// Panics on an unknown fleet id.
#[must_use]
pub fn config_for(fleet: &str) -> ClusterConfig {
    let nodes = match fleet {
        "cgpu-spot" => (0..4).map(cgpu_spot_node).collect(),
        "tdx-reserved" => (0..4).map(tdx_reserved_node).collect(),
        "mixed-failover" => vec![
            cgpu_spot_node(0),
            cgpu_spot_node(1),
            tdx_reserved_node(2),
            tdx_reserved_node(3),
        ],
        other => panic!("unknown fleet shape {other:?}"),
    };
    ClusterConfig {
        serving: config(),
        nodes,
        admission: AdmissionPolicy::default(),
        breaker: BreakerConfig::default(),
        wave: WaveModel {
            waves_per_hr: WAVES_PER_HR,
            frac: WAVE_FRAC,
            seed: SCHEDULE_SEED,
        },
        failover: fleet == "mixed-failover",
        spill: SpillPenalty::cross_platform(),
    }
}

/// The cluster report for one fleet shape.
#[must_use]
pub fn report_for(fleet: &str) -> ClusterReport {
    simulate_cluster(&config_for(fleet))
}

/// Span trace of all three fleets: one lane per fleet shape, in
/// [`FLEETS`] order, each covering every node, breaker transition,
/// failover re-queue and spill of that fleet's run.
#[must_use]
pub fn trace() -> cllm_obs::Trace {
    use cllm_serve::cluster::simulate_cluster_traced;
    let lanes = crate::runner::par_map(&FLEETS, crate::runner::grid_workers(), |fleet| {
        simulate_cluster_traced(&config_for(fleet)).1
    });
    cllm_obs::Trace::merge(lanes)
}

/// Summed hourly price of the fleet: Azure NCC H100 rates for cGPU
/// nodes, GCP CPU rates for TDX sockets (same pricing anchors as the
/// single-node `resilience` experiment).
#[must_use]
pub fn fleet_cost_per_hr(fleet: &str) -> f64 {
    let cfg = config();
    config_for(fleet)
        .nodes
        .iter()
        .map(|spec| match spec.node {
            ServingNode::Gpu { .. } => GpuPricing::azure_ncc_h100().per_hr,
            ServingNode::Cpu { .. } => CpuPricing::gcp_spot_us_east1()
                .instance_cost_per_hr(cfg.target.cores_per_socket * 2, 128.0),
        })
        .sum()
}

/// Effective $/Mtok delivered by the whole fleet: summed hourly price
/// over realized goodput, so wave downtime, retry waste and spill
/// penalties all surface as cost.
#[must_use]
pub fn effective_usd_per_mtok(fleet: &str, report: &ClusterReport) -> f64 {
    if report.goodput_tps <= 0.0 {
        return 0.0;
    }
    cost_per_mtok(fleet_cost_per_hr(fleet), report.goodput_tps)
}

/// Run the experiment.
#[must_use]
#[allow(clippy::cast_possible_wrap)] // counts are tiny (≤ arrivals in a 60 s trace)
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "cluster_resilience",
        "Multi-node TEE fleets under correlated preemption waves: failover, admission, cost",
        vec![
            Column::str("fleet"),
            Column::int("completed"),
            Column::int("rejected"),
            Column::int("aborted"),
            Column::int("retries"),
            Column::int("spills"),
            Column::pct("availability"),
            Column::float("ttft_p99_s", Unit::Seconds, 3),
            Column::float("goodput_tps", Unit::TokensPerSec, 1),
            Column::float("usd_per_mtok", Unit::UsdPerMtok, 3),
        ],
    );
    let sweep = Sweep::over(FLEETS);
    r.extend_rows(sweep.rows(|&fleet| {
        let report = report_for(fleet);
        assert_eq!(
            report.completed + report.aborted + report.rejected,
            report.arrivals,
            "cluster conservation violated on {fleet}"
        );
        vec![
            Value::str(fleet),
            Value::int(report.completed as i64),
            Value::int(report.rejected as i64),
            Value::int(report.aborted as i64),
            Value::int(report.retries as i64),
            Value::int(report.spills as i64),
            Value::pct(report.availability * 100.0),
            Value::float(report.ttft_p99_s, Unit::Seconds, 3),
            Value::float(report.goodput_tps, Unit::TokensPerSec, 1),
            Value::float(effective_usd_per_mtok(fleet, &report), Unit::UsdPerMtok, 3),
        ]
    }));
    r.note("same arrival trace and wave seed for every fleet; waves preempt ceil(0.75 x spot nodes) at once, and only spot nodes are eligible victims");
    r.note("fault rates accelerated 600x as in the resilience experiment; breaker closes and retried admissions pay fresh attested handshakes through cllm_tee::session");
    r.note("mixed-failover spills cGPU victims onto reserved TDX nodes at a requantisation + prefill penalty; $/Mtok is the summed fleet hourly price over delivered goodput");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_on_every_fleet() {
        for fleet in FLEETS {
            let r = report_for(fleet);
            assert_eq!(
                r.completed + r.aborted + r.rejected,
                r.arrivals,
                "{fleet}: {} + {} + {} != {}",
                r.completed,
                r.aborted,
                r.rejected,
                r.arrivals
            );
            assert!(r.arrivals > 0, "{fleet}: empty trace");
        }
    }

    #[test]
    fn waves_cost_the_all_spot_fleet_availability() {
        let cgpu = report_for("cgpu-spot");
        assert!(
            cgpu.availability < 1.0,
            "correlated waves must cost the spot fleet downtime"
        );
    }

    #[test]
    fn mixed_fleet_survives_waves_better_than_all_spot() {
        // The acceptance criterion of the extension: under the same
        // arrival trace and wave seed, the mixed fleet with failover is
        // strictly more available than the homogeneous spot-cGPU fleet.
        let cgpu = report_for("cgpu-spot");
        let mixed = report_for("mixed-failover");
        assert!(
            mixed.availability > cgpu.availability,
            "mixed {} !> cgpu-spot {}",
            mixed.availability,
            cgpu.availability
        );
    }

    #[test]
    fn reserved_fleet_sees_no_preemptions() {
        let r = report_for("tdx-reserved");
        // No spot nodes: waves have no victims and the reserved rates
        // carry no preemption stream, so nothing ever loses KV state.
        assert_eq!(r.retries, 0, "reserved fleet must not lose state");
        assert_eq!(r.aborted, 0);
        assert_eq!(r.spills, 0);
    }

    #[test]
    fn failover_is_what_produces_spills() {
        let mixed = report_for("mixed-failover");
        assert_eq!(mixed.nodes.len(), 4, "mixed fleet is 2 cGPU + 2 TDX nodes");
        assert!(
            mixed.spills > 0,
            "mixed fleet must spill wave victims onto TDX"
        );
        let cgpu = report_for("cgpu-spot");
        assert_eq!(cgpu.spills, 0, "homogeneous fleet cannot cross platforms");
    }

    #[test]
    fn table_has_one_row_per_fleet_and_is_deterministic() {
        let a = run();
        assert_eq!(a.rows.len(), FLEETS.len());
        let b = run();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
