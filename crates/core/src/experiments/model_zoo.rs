//! Section III-C3 cross-check: TDX overheads across additional LLMs
//! (Llama3 8B, GPT-J 6B, Falcon 7B, Baichuan2 7B, Qwen 7B), expected to
//! stay in line with Llama2-7B (paper: 3.1-13.1%).

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{CpuScenario, Sweep};
use cllm_perf::CpuTarget;
use cllm_workload::phase::RequestSpec;
use cllm_workload::{zoo, ModelConfig};

/// TDX throughput overhead for one model.
#[must_use]
pub fn overhead(model: &ModelConfig) -> f64 {
    CpuScenario::llama2_7b(RequestSpec::new(6, 1024, 128).with_beam(4))
        .with_model(model.clone())
        .with_target(CpuTarget::emr1_single_socket())
        .thr_overhead()
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "model_zoo",
        "TDX throughput overhead across dense-transformer LLMs (EMR1)",
        vec![
            Column::str("model"),
            Column::float("params_b", Unit::BillionParams, 1),
            Column::pct("tdx_overhead"),
        ],
    );
    let mut models = vec![zoo::llama2_7b()];
    models.extend(zoo::cross_check_models());
    r.extend_rows(Sweep::over(models).rows(|m| {
        vec![
            Value::str(m.name.clone()),
            Value::float(m.param_count() as f64 / 1e9, Unit::BillionParams, 1),
            Value::pct(overhead(m)),
        ]
    }));
    r.note("paper: 3.1-13.1% overheads across Llama3 8B, GPT-J 6B, Falcon 7B, Baichuan2 7B, Qwen 7B — in line with Llama2-7B");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_in_paper_band() {
        for m in zoo::cross_check_models() {
            let o = overhead(&m);
            assert!((3.0..13.5).contains(&o), "{}: {o}%", m.name);
        }
    }

    #[test]
    fn consistent_with_llama2() {
        // Consistent computational patterns -> consistent overheads.
        let base = overhead(&zoo::llama2_7b());
        for m in zoo::cross_check_models() {
            let o = overhead(&m);
            assert!((o - base).abs() < 6.0, "{} deviates: {o} vs {base}", m.name);
        }
    }
}
