//! Figure 1: headline TEE overheads for Llama2-7B plus the attack
//! taxonomy TEEs defend against.

use super::{num, pct, ExperimentResult};
use cllm_hw::DType;
use cllm_perf::{simulate_cpu, simulate_gpu, throughput_overhead_pct, CpuTarget};
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, TeeKind};
use cllm_tee::threat::{protection, Attack};
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig1",
        "Headline Llama2-7B throughput under CPU and GPU TEEs (1024 in / 128 out)",
        &["platform", "throughput_tps", "overhead_vs_baseline"],
    );
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(6, 1024, 128).with_beam(4);
    let target = CpuTarget::emr1_single_socket();

    let bare = simulate_cpu(
        &model,
        &req,
        DType::Bf16,
        &target,
        &CpuTeeConfig::bare_metal(),
    );
    for tee in [CpuTeeConfig::tdx(), CpuTeeConfig::sgx()] {
        let sim = simulate_cpu(&model, &req, DType::Bf16, &target, &tee);
        r.push_row(vec![
            format!("{} (CPU)", tee.kind.label()),
            num(sim.decode_tps, 1),
            pct(throughput_overhead_pct(bare.decode_tps, sim.decode_tps)),
        ]);
    }

    let gpu = cllm_hw::presets::h100_nvl();
    let gpu_req = RequestSpec::new(6, 1024, 128);
    let raw = simulate_gpu(&model, &gpu_req, DType::Bf16, &gpu, &GpuTeeConfig::native());
    let cc = simulate_gpu(
        &model,
        &gpu_req,
        DType::Bf16,
        &gpu,
        &GpuTeeConfig::confidential(),
    );
    r.push_row(vec![
        "cGPU (H100)".to_owned(),
        num(cc.decode_tps, 1),
        pct(throughput_overhead_pct(raw.decode_tps, cc.decode_tps)),
    ]);

    r.note("paper: TEEs incur only 4-7% throughput reduction for cLLMs");
    for attack in Attack::all() {
        r.note(format!(
            "threat [{}]: TDX {} / SGX {} / cGPU {}",
            attack.description(),
            protection(TeeKind::Tdx, attack).glyph(),
            protection(TeeKind::Sgx, attack).glyph(),
            protection(TeeKind::GpuCc, attack).glyph(),
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn headline_overheads_in_band() {
        let r = super::run();
        for row in &r.rows {
            let ovh: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert!(
                (2.0..12.0).contains(&ovh),
                "{}: headline overhead {ovh}% outside band",
                row[0]
            );
        }
    }

    #[test]
    fn covers_all_three_tees() {
        let r = super::run();
        assert_eq!(r.rows.len(), 3);
    }
}
