//! Figure 1: headline TEE overheads for Llama2-7B plus the attack
//! taxonomy TEEs defend against.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{CpuScenario, GpuScenario};
use cllm_perf::CpuTarget;
use cllm_tee::platform::{CpuTeeConfig, TeeKind};
use cllm_tee::threat::{protection, Attack};
use cllm_workload::phase::RequestSpec;

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig1",
        "Headline Llama2-7B throughput under CPU and GPU TEEs (1024 in / 128 out)",
        vec![
            Column::str("platform"),
            Column::float("throughput_tps", Unit::TokensPerSec, 1),
            Column::pct("overhead_vs_baseline"),
        ],
    );
    let base = CpuScenario::llama2_7b(RequestSpec::new(6, 1024, 128).with_beam(4))
        .with_target(CpuTarget::emr1_single_socket());
    for tee in [CpuTeeConfig::tdx(), CpuTeeConfig::sgx()] {
        let label = format!("{} (CPU)", tee.kind.label());
        let s = base.clone().with_tee(tee);
        r.push_row(vec![
            Value::str(label),
            Value::float(s.simulate().decode_tps, Unit::TokensPerSec, 1),
            Value::pct(s.thr_overhead()),
        ]);
    }

    let gpu = GpuScenario::llama2_7b(RequestSpec::new(6, 1024, 128));
    r.push_row(vec![
        Value::str("cGPU (H100)"),
        Value::float(gpu.simulate().decode_tps, Unit::TokensPerSec, 1),
        Value::pct(gpu.decode_overhead()),
    ]);

    r.note("paper: TEEs incur only 4-7% throughput reduction for cLLMs");
    for attack in Attack::all() {
        r.note(format!(
            "threat [{}]: TDX {} / SGX {} / cGPU {}",
            attack.description(),
            protection(TeeKind::Tdx, attack).glyph(),
            protection(TeeKind::Sgx, attack).glyph(),
            protection(TeeKind::GpuCc, attack).glyph(),
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn headline_overheads_in_band() {
        let r = super::run();
        for row in &r.rows {
            let ovh = row[2].as_f64().expect("overhead column is numeric");
            assert!(
                (2.0..12.0).contains(&ovh),
                "{}: headline overhead {ovh}% outside band",
                row[0].format()
            );
        }
    }

    #[test]
    fn covers_all_three_tees() {
        let r = super::run();
        assert_eq!(r.rows.len(), 3);
    }
}
