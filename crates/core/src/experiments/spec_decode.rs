//! Speculative-decode pricing across TEE platforms: when does a small
//! draft model plus chunked verification beat plain autoregressive
//! decode, and what does each platform's confidentiality tax do to the
//! break-even acceptance rate?
//!
//! The executable engine's `bench_infer` measures speculative decoding
//! *losing* (~0.7x tiled decode) because its draft shares the target's
//! shape: a draft step costs over half a target step, so batching the
//! verify cannot pay for the drafting. This experiment prices the
//! regime speculation is actually for — a draft ~25x smaller than the
//! target — on the paper's platforms (bare metal, TDX, SGX, and the
//! confidential H100).
//!
//! The model is the standard speculative-decoding round: the draft
//! proposes `k` tokens (k sequential draft decode steps), the target
//! verifies all of them plus one bonus position in a single chunked
//! forward — priced as one batch-`k+1` decode step, which streams the
//! target's weights once per round, the amortization that makes
//! verification cheap on memory-bound decode. At acceptance rate `a`
//! the expected emitted tokens per round are
//! `E = (1 - a^(k+1)) / (1 - a)`, so
//!
//! ```text
//! spec_tps = E / (k * t_draft + t_verify(k+1))
//! ```
//!
//! versus `vanilla_tps = 1 / t_target`. Because every platform's tax
//! (TDX MEE derate, SGX EPC paging, cGPU bounce buffer) multiplies the
//! draft, verify and vanilla steps alike, speedup shifts only where a
//! platform prices batch-`k+1` verification differently from batch-1
//! decode.

use super::{Column, ExperimentResult, Unit, Value};
use crate::scenario::{grid2, Sweep};
use cllm_hw::DType;
use cllm_perf::{decode_step_time_s, gpu_decode_step_time_s, CpuTarget};
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig};
use cllm_workload::{zoo, MlpKind, ModelConfig};

/// Platforms compared, in table order.
pub const PLATFORMS: [&str; 4] = ["bare-metal", "tdx", "sgx", "cgpu-h100"];

/// Acceptance rates swept. 0.6 is a mediocre draft, 0.8 a production
/// draft, 0.9 a well-distilled one (the engine's same-shape int8 draft
/// measures ~0.94 on seeded weights).
pub const ALPHAS: [f64; 3] = [0.6, 0.8, 0.9];

/// Draft window: tokens proposed per round. Longer windows amortize
/// verification better but waste more drafting past the first
/// rejection; k=4 is the common production choice.
pub const DRAFT_K: u64 = 4;

/// Decode context the step times are priced at.
const CONTEXT: u64 = 512;

/// Weights dtype for target and draft alike.
const DTYPE: DType = DType::Bf16;

/// The verification target: the paper's primary subject.
#[must_use]
pub fn target_model() -> ModelConfig {
    zoo::llama2_7b()
}

/// The draft: a Llama-160M-class proposer sharing the target's
/// vocabulary (speculative decoding requires identical token spaces).
/// ~25x fewer parameters than Llama2-7B, so a draft step is a small
/// fraction of a target step — the regime the engine's same-shape
/// draft cannot reach.
#[must_use]
pub fn draft_model() -> ModelConfig {
    ModelConfig {
        name: "Draft 160M".to_owned(),
        hidden: 768,
        layers: 12,
        heads: 12,
        kv_heads: 12,
        intermediate: 2048,
        mlp: MlpKind::GatedSilu,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Expected emitted tokens per speculative round at acceptance `a`:
/// the accepted prefix of `k` proposals plus the target's bonus token,
/// `E = (1 - a^(k+1)) / (1 - a)` (and `k + 1` exactly when `a = 1`).
#[must_use]
pub fn expected_tokens_per_round(a: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&a), "acceptance must be in [0, 1]");
    #[allow(clippy::cast_possible_truncation)]
    let kp1 = (k + 1) as i32;
    if (1.0 - a).abs() < 1e-12 {
        f64::from(kp1)
    } else {
        (1.0 - a.powi(kp1)) / (1.0 - a)
    }
}

/// One decode step of `model` at `batch` sequences on `platform`.
///
/// # Panics
///
/// Panics on an unknown platform id.
#[must_use]
pub fn step_time_s(platform: &str, model: &ModelConfig, batch: u64) -> f64 {
    match platform {
        "bare-metal" => decode_step_time_s(
            model,
            DTYPE,
            &CpuTarget::emr1_single_socket(),
            &CpuTeeConfig::bare_metal(),
            batch,
            CONTEXT,
        ),
        "tdx" => decode_step_time_s(
            model,
            DTYPE,
            &CpuTarget::emr1_single_socket(),
            &CpuTeeConfig::tdx(),
            batch,
            CONTEXT,
        ),
        "sgx" => decode_step_time_s(
            model,
            DTYPE,
            &CpuTarget::emr1_single_socket(),
            &CpuTeeConfig::sgx(),
            batch,
            CONTEXT,
        ),
        "cgpu-h100" => gpu_decode_step_time_s(
            model,
            DTYPE,
            &cllm_hw::presets::h100_nvl(),
            &GpuTeeConfig::confidential(),
            batch,
            CONTEXT,
        ),
        other => panic!("unknown platform {other:?}"),
    }
}

/// The four numbers one `(platform, alpha)` arm reduces to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecPoint {
    /// Plain autoregressive tokens/sec (one target step per token).
    pub vanilla_tps: f64,
    /// Speculative tokens/sec: `E / (k * t_draft + t_verify)`.
    pub spec_tps: f64,
    /// `spec_tps / vanilla_tps`.
    pub speedup: f64,
    /// Share of a round spent drafting, percent.
    pub draft_cost_pct: f64,
}

/// Price one `(platform, alpha)` arm.
///
/// # Panics
///
/// Panics on an unknown platform id.
#[must_use]
pub fn point(platform: &str, alpha: f64) -> SpecPoint {
    let t_target = step_time_s(platform, &target_model(), 1);
    let t_draft = step_time_s(platform, &draft_model(), 1);
    let t_verify = step_time_s(platform, &target_model(), DRAFT_K + 1);
    #[allow(clippy::cast_precision_loss)]
    let draft_total = DRAFT_K as f64 * t_draft;
    let round = draft_total + t_verify;
    let e = expected_tokens_per_round(alpha, DRAFT_K);
    let vanilla_tps = 1.0 / t_target;
    let spec_tps = e / round;
    SpecPoint {
        vanilla_tps,
        spec_tps,
        speedup: spec_tps / vanilla_tps,
        draft_cost_pct: 100.0 * draft_total / round,
    }
}

/// Run the experiment.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "spec_decode",
        "Speculative decoding priced per TEE platform: small draft + chunked verify vs plain decode",
        vec![
            Column::str("platform"),
            Column::float("alpha", Unit::None, 2),
            Column::int("k"),
            Column::float("vanilla_tps", Unit::TokensPerSec, 1),
            Column::float("spec_tps", Unit::TokensPerSec, 1),
            Column::float("speedup", Unit::None, 2),
            Column::pct("draft_cost"),
        ],
    );
    let sweep = Sweep::over(grid2(&PLATFORMS, &ALPHAS));
    r.extend_rows(sweep.rows(|&(platform, alpha)| {
        let p = point(platform, alpha);
        #[allow(clippy::cast_possible_wrap)]
        let k = DRAFT_K as i64;
        vec![
            Value::str(platform),
            Value::float(alpha, Unit::None, 2),
            Value::int(k),
            Value::float(p.vanilla_tps, Unit::TokensPerSec, 1),
            Value::float(p.spec_tps, Unit::TokensPerSec, 1),
            Value::float(p.speedup, Unit::None, 2),
            Value::pct(p.draft_cost_pct),
        ]
    }));
    r.note("round = k sequential Draft-160M steps + one batch-(k+1) Llama2-7B verify step at context 512; E[tokens/round] = (1 - a^(k+1)) / (1 - a); all steps priced by the calibrated roofline per platform");
    r.note("verification streams the target's weights once per round (a chunked forward), which is why speculation pays exactly where decode is weight-bound; each platform's confidentiality tax multiplies draft, verify and vanilla steps alike");
    r.note("the executable engine's bench_infer measures spec/tiled ~0.7 with a same-shape int8 draft (BENCH_infer.json) — the draft there costs over half a target step; this table prices the ~25x-smaller draft that regime needs");
    r.note("the cGPU's per-step floor (kernel launch + CC transit) is paid by every draft step too, so drafting costs relatively more there than on the weight-streaming-bound CPU platforms");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_tokens_formula_is_sane() {
        // a=0: only the bonus token. a=1: the whole window plus bonus.
        assert!((expected_tokens_per_round(0.0, 4) - 1.0).abs() < 1e-12);
        assert!((expected_tokens_per_round(1.0, 4) - 5.0).abs() < 1e-12);
        // Monotone in acceptance, bounded by (1, k+1].
        let mut last = 1.0;
        for a in [0.2, 0.5, 0.8, 0.95] {
            let e = expected_tokens_per_round(a, DRAFT_K);
            assert!(e > last, "E must grow with acceptance");
            #[allow(clippy::cast_precision_loss)]
            let cap = (DRAFT_K + 1) as f64;
            assert!(e <= cap);
            last = e;
        }
    }

    #[test]
    fn draft_is_a_small_fraction_of_the_target() {
        // CPU decode is weight-streaming-bound, so a ~25x smaller draft
        // steps ~25x cheaper. The cGPU prices a per-step floor (kernel
        // launch + CC transit) that the draft pays in full, so its
        // relative draft cost is structurally higher — the table's
        // cross-platform story.
        for platform in PLATFORMS {
            let t = step_time_s(platform, &target_model(), 1);
            let d = step_time_s(platform, &draft_model(), 1);
            let cap = if platform == "cgpu-h100" { 0.6 } else { 0.25 };
            assert!(
                d < cap * t,
                "{platform}: draft step {d} not under {cap} x target step {t}"
            );
        }
    }

    #[test]
    fn chunked_verify_is_cheaper_than_sequential_decode() {
        // The amortization speculation rests on: one batch-(k+1) step
        // costs far less than k+1 sequential steps on weight-bound
        // decode.
        for platform in PLATFORMS {
            let single = step_time_s(platform, &target_model(), 1);
            let verify = step_time_s(platform, &target_model(), DRAFT_K + 1);
            #[allow(clippy::cast_precision_loss)]
            let sequential = (DRAFT_K + 1) as f64 * single;
            assert!(
                verify < 0.6 * sequential,
                "{platform}: batch verify {verify} not ≪ sequential {sequential}"
            );
        }
    }

    #[test]
    fn good_drafts_win_everywhere_and_speedup_grows_with_acceptance() {
        for platform in PLATFORMS {
            let mut last = 0.0;
            for alpha in ALPHAS {
                let p = point(platform, alpha);
                assert!(p.speedup > last, "{platform}: speedup must grow in alpha");
                assert!(p.draft_cost_pct > 0.0 && p.draft_cost_pct < 100.0);
                last = p.speedup;
            }
            assert!(
                point(platform, 0.9).speedup > 1.0,
                "{platform}: a 0.9-acceptance draft must beat plain decode"
            );
        }
    }

    #[test]
    fn table_covers_the_grid_and_is_deterministic() {
        let a = run();
        assert_eq!(a.rows.len(), PLATFORMS.len() * ALPHAS.len());
        let b = run();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
