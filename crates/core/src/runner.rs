//! Parallel experiment runner: executes the paper's experiment registry
//! across a bounded pool of scoped worker threads while preserving the
//! exact paper ordering (and therefore byte-identical output) of the
//! sequential run.
//!
//! Two levels of parallelism compose here:
//!
//! * **Across experiments** — [`run_all_parallel`] distributes the
//!   registry entries over a worker pool.
//! * **Within an experiment** — heavy sweeps (fig9/fig10/fig11/
//!   model_sizes) evaluate their grids through [`par_map`], which keeps
//!   output order equal to input order regardless of completion order.
//!
//! Determinism: the simulator is seeded purely from its inputs and the
//! `cllm-perf` memoization cache stores values keyed by those inputs, so
//! thread scheduling cannot change any number — only wall-clock time.
//! [`run_all_sequential`] additionally pins grid parallelism to one
//! worker for the duration of the call, making it a true single-thread
//! baseline for timing comparisons.
//!
//! # Isolation
//!
//! A panic in one experiment must not cost the other results their
//! emission: [`run_entries_isolated`] fences every entry with
//! `catch_unwind` and returns a typed [`ExperimentError`] per failure,
//! so harness binaries can persist the partial results and report the
//! failures instead of aborting wholesale.

use crate::experiments::{all_experiments, run_by_id, ExperimentEntry, ExperimentResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Grid-parallelism override: 0 = use [`default_workers`], otherwise a
/// fixed worker count. Set to 1 while [`run_all_sequential`] runs so the
/// sequential baseline really is sequential.
static GRID_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Worker count used by the runner and by in-experiment grids: the
/// `CLLM_RUNNER_THREADS` environment variable if set to a positive
/// integer, else the machine's available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("CLLM_RUNNER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Worker count experiment grids should use *right now*: 1 while a
/// sequential baseline is running, [`default_workers`] otherwise.
#[must_use]
pub fn grid_workers() -> usize {
    match GRID_WORKERS.load(Ordering::Relaxed) {
        0 => default_workers(),
        n => n,
    }
}

/// Restores the previous grid-parallelism override on drop.
struct GridWorkersGuard(usize);

impl GridWorkersGuard {
    fn pin(workers: usize) -> Self {
        GridWorkersGuard(GRID_WORKERS.swap(workers, Ordering::Relaxed))
    }
}

impl Drop for GridWorkersGuard {
    fn drop(&mut self) {
        GRID_WORKERS.store(self.0, Ordering::Relaxed);
    }
}

/// Map `f` over `items` on a bounded pool of `workers` scoped threads,
/// returning outputs **in input order** no matter which worker finishes
/// first. Work is distributed by an atomic cursor, so an expensive item
/// never blocks cheap ones behind a static partition.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers have stopped.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = f(item);
                    // A sibling worker's panic may have poisoned the slot
                    // (e.g. while dropping a previous value). Recover the
                    // guard: poisoning here carries no data invariant, and
                    // panicking again would mask the original failure with
                    // a double-panic abort.
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload reaches the caller
        // verbatim instead of the scope's generic message.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    slots
        .into_iter()
        .map(|slot| {
            // Same poison-recovery rationale as the worker store above:
            // surface the real failure (a missing slot), never a
            // secondary "slot lock" panic.
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Run `f` with in-experiment grid parallelism pinned to `workers`; the
/// previous setting is restored when `f` returns (or unwinds).
pub fn with_grid_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    let _guard = GridWorkersGuard::pin(workers);
    f()
}

/// Why an experiment produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The experiment panicked; the payload message is preserved so the
    /// harness can report the original failure.
    Panicked {
        /// Registry id of the failing experiment.
        id: String,
        /// The panic payload, stringified.
        message: String,
    },
    /// No experiment with the requested id is registered.
    UnknownId(
        /// The id that failed to resolve.
        String,
    ),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Panicked { id, message } => {
                write!(f, "experiment '{id}' panicked: {message}")
            }
            ExperimentError::UnknownId(id) => write!(f, "unknown experiment id '{id}'"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Stringify a `catch_unwind` payload: the common `&str`/`String`
/// payloads verbatim, anything else a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `entries` across `workers` scoped threads with each experiment
/// fenced by `catch_unwind`: one panicking entry yields an
/// [`ExperimentError::Panicked`] in its slot while every other entry
/// still returns its result. Output order equals input order.
#[must_use]
pub fn run_entries_isolated(
    entries: &[ExperimentEntry],
    workers: usize,
) -> Vec<(&'static str, Result<ExperimentResult, ExperimentError>)> {
    par_map(entries, workers, |&(id, run)| {
        let outcome =
            catch_unwind(AssertUnwindSafe(run)).map_err(|payload| ExperimentError::Panicked {
                id: id.to_string(),
                message: panic_message(payload.as_ref()),
            });
        (id, outcome)
    })
}

/// [`run_entries_isolated`] over the whole registry.
#[must_use]
pub fn run_all_isolated(
    workers: usize,
) -> Vec<(&'static str, Result<ExperimentResult, ExperimentError>)> {
    run_entries_isolated(&all_experiments(), workers)
}

/// Wall-clock and memoization profile for one experiment run. Collected
/// by [`run_entries_profiled`] and reported on stderr only — profiles
/// depend on the host machine and thread schedule, so they are kept out
/// of goldens and every other deterministic artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct RunProfile {
    /// Registry id of the experiment.
    pub id: &'static str,
    /// Wall-clock seconds spent inside the experiment closure.
    pub wall_s: f64,
    /// `cllm_perf` cache hits observed while the experiment ran. Exact
    /// when `workers == 1`; with a parallel pool, concurrent siblings
    /// share the global counters, so the delta attributes their traffic
    /// too.
    pub cache_hits: u64,
    /// `cllm_perf` cache misses observed while the experiment ran (same
    /// attribution caveat as [`RunProfile::cache_hits`]).
    pub cache_misses: u64,
}

impl RunProfile {
    /// One-line human-readable rendering for stderr reports.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<22} {:>8.3}s  cache {:>5} hit / {:>5} miss",
            self.id, self.wall_s, self.cache_hits, self.cache_misses
        )
    }
}

/// [`run_entries_isolated`] plus a per-experiment [`RunProfile`]:
/// wall-clock time and the `cllm_perf` cache hit/miss delta observed
/// around each entry. Results (and their order) are identical to the
/// unprofiled run; the profile rides alongside and must never feed a
/// golden.
#[must_use]
pub fn run_entries_profiled(
    entries: &[ExperimentEntry],
    workers: usize,
) -> Vec<(
    &'static str,
    Result<ExperimentResult, ExperimentError>,
    RunProfile,
)> {
    par_map(entries, workers, |&(id, run)| {
        let stats0 = cllm_perf::cache::stats();
        let t0 = std::time::Instant::now();
        let outcome =
            catch_unwind(AssertUnwindSafe(run)).map_err(|payload| ExperimentError::Panicked {
                id: id.to_string(),
                message: panic_message(payload.as_ref()),
            });
        let wall_s = t0.elapsed().as_secs_f64();
        let stats1 = cllm_perf::cache::stats();
        let profile = RunProfile {
            id,
            wall_s,
            cache_hits: stats1.hits.saturating_sub(stats0.hits),
            cache_misses: stats1.misses.saturating_sub(stats0.misses),
        };
        (id, outcome, profile)
    })
}

/// Run a single experiment by id with panic isolation.
///
/// # Errors
///
/// [`ExperimentError::UnknownId`] if `id` is not registered,
/// [`ExperimentError::Panicked`] if the experiment panicked.
pub fn run_one_isolated(id: &str) -> Result<ExperimentResult, ExperimentError> {
    let entries = all_experiments();
    let Some(&(found, run)) = entries.iter().find(|(eid, _)| *eid == id) else {
        return Err(ExperimentError::UnknownId(id.to_string()));
    };
    catch_unwind(AssertUnwindSafe(run)).map_err(|payload| ExperimentError::Panicked {
        id: found.to_string(),
        message: panic_message(payload.as_ref()),
    })
}

/// Run every registered experiment one after another on the calling
/// thread, with in-experiment grid parallelism pinned to one worker —
/// the timing baseline for [`run_all_parallel`]. Results are in paper
/// order.
#[must_use]
pub fn run_all_sequential() -> Vec<ExperimentResult> {
    let _guard = GridWorkersGuard::pin(1);
    all_experiments()
        .into_iter()
        .map(|(_, run)| run())
        .collect()
}

/// Run every registered experiment across `workers` scoped threads.
/// Results are in paper order and identical (to the byte, after JSON
/// rendering) to [`run_all_sequential`]'s.
#[must_use]
pub fn run_all_parallel(workers: usize) -> Vec<ExperimentResult> {
    let entries = all_experiments();
    par_map(&entries, workers, |(_, run)| run())
}

/// Run a single experiment by id through the runner (grids inside it
/// still parallelize via [`par_map`]). `None` for an unknown id.
#[must_use]
pub fn run_one(id: &str) -> Option<ExperimentResult> {
    run_by_id(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[9u32], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn par_map_uneven_costs_still_ordered() {
        // Early items sleep so later items finish first; order must hold.
        let items: Vec<u64> = (0..12).collect();
        let out = par_map(&items, 4, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "grid boom")]
    fn par_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map(&items, 4, |&x| {
            assert!(x != 5, "grid boom");
            x
        });
    }

    #[test]
    fn run_one_matches_registry() {
        let direct = crate::experiments::run_by_id("fig1").expect("fig1 exists");
        let via_runner = run_one("fig1").expect("fig1 exists");
        assert_eq!(direct, via_runner);
        assert!(run_one("nope").is_none());
    }

    #[test]
    fn sequential_pins_grid_workers() {
        let _guard = GridWorkersGuard::pin(1);
        assert_eq!(grid_workers(), 1);
        drop(_guard);
        assert!(grid_workers() >= 1);
    }

    #[test]
    fn with_grid_workers_scopes_the_override() {
        let outside = grid_workers();
        let inside = with_grid_workers(1, grid_workers);
        assert_eq!(inside, 1);
        assert_eq!(grid_workers(), outside);
    }

    #[test]
    fn with_grid_workers_restores_on_unwind() {
        let outside = grid_workers();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_grid_workers(1, || panic!("boom inside override"))
        }));
        assert_eq!(grid_workers(), outside);
    }

    fn good() -> ExperimentResult {
        crate::experiments::run_by_id("fig1").expect("fig1 exists")
    }

    fn bad() -> ExperimentResult {
        panic!("injected failure for isolation test")
    }

    #[test]
    fn isolated_run_survives_a_panicking_entry() {
        let entries: Vec<ExperimentEntry> = vec![("fig1", good), ("boom", bad), ("fig1b", good)];
        let out = run_entries_isolated(&entries, 2);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, "fig1");
        assert!(out[0].1.is_ok(), "healthy entry before the failure");
        assert!(out[2].1.is_ok(), "healthy entry after the failure");
        match &out[1].1 {
            Err(ExperimentError::Panicked { id, message }) => {
                assert_eq!(id, "boom");
                assert!(
                    message.contains("injected failure"),
                    "original payload surfaced, got: {message}"
                );
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn profiled_run_matches_isolated_results() {
        let entries: Vec<ExperimentEntry> = vec![("fig1", good), ("boom", bad)];
        let plain = run_entries_isolated(&entries, 1);
        let profiled = run_entries_profiled(&entries, 1);
        assert_eq!(profiled.len(), plain.len());
        for ((pid, pres, profile), (id, res)) in profiled.iter().zip(plain.iter()) {
            assert_eq!(pid, id, "profiling must not reorder entries");
            assert_eq!(pres, res, "profiling must not change results");
            assert_eq!(profile.id, *id);
            assert!(profile.wall_s >= 0.0);
        }
    }

    #[test]
    fn profile_renders_one_line() {
        let p = RunProfile {
            id: "fig1",
            wall_s: 0.25,
            cache_hits: 3,
            cache_misses: 1,
        };
        let line = p.render();
        assert!(line.contains("fig1") && line.contains("hit") && line.contains("miss"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn isolated_single_runs() {
        assert!(run_one_isolated("fig1").is_ok());
        assert_eq!(
            run_one_isolated("nope"),
            Err(ExperimentError::UnknownId("nope".to_string()))
        );
    }

    #[test]
    fn isolation_is_deterministic_across_workers() {
        let entries: Vec<ExperimentEntry> = vec![("fig1", good), ("boom", bad)];
        let seq = run_entries_isolated(&entries, 1);
        let par = run_entries_isolated(&entries, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn experiment_error_displays_the_cause() {
        let e = ExperimentError::Panicked {
            id: "x".to_string(),
            message: "why".to_string(),
        };
        assert_eq!(e.to_string(), "experiment 'x' panicked: why");
        assert_eq!(
            ExperimentError::UnknownId("y".to_string()).to_string(),
            "unknown experiment id 'y'"
        );
    }

    #[test]
    fn panic_payload_stringification() {
        let p = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static str");
        let id = 7;
        let p = catch_unwind(move || panic!("formatted {id}")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
        let p = catch_unwind(|| std::panic::panic_any(42u8)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
