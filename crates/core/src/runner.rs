//! Parallel experiment runner: executes the paper's experiment registry
//! across a bounded pool of scoped worker threads while preserving the
//! exact paper ordering (and therefore byte-identical output) of the
//! sequential run.
//!
//! Two levels of parallelism compose here:
//!
//! * **Across experiments** — [`run_all_parallel`] distributes the 23
//!   registry entries over a worker pool.
//! * **Within an experiment** — heavy sweeps (fig9/fig10/fig11/
//!   model_sizes) evaluate their grids through [`par_map`], which keeps
//!   output order equal to input order regardless of completion order.
//!
//! Determinism: the simulator is seeded purely from its inputs and the
//! `cllm-perf` memoization cache stores values keyed by those inputs, so
//! thread scheduling cannot change any number — only wall-clock time.
//! [`run_all_sequential`] additionally pins grid parallelism to one
//! worker for the duration of the call, making it a true single-thread
//! baseline for timing comparisons.

use crate::experiments::{all_experiments, run_by_id, ExperimentResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Grid-parallelism override: 0 = use [`default_workers`], otherwise a
/// fixed worker count. Set to 1 while [`run_all_sequential`] runs so the
/// sequential baseline really is sequential.
static GRID_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Worker count used by the runner and by in-experiment grids: the
/// `CLLM_RUNNER_THREADS` environment variable if set to a positive
/// integer, else the machine's available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("CLLM_RUNNER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Worker count experiment grids should use *right now*: 1 while a
/// sequential baseline is running, [`default_workers`] otherwise.
#[must_use]
pub fn grid_workers() -> usize {
    match GRID_WORKERS.load(Ordering::Relaxed) {
        0 => default_workers(),
        n => n,
    }
}

/// Restores the previous grid-parallelism override on drop.
struct GridWorkersGuard(usize);

impl GridWorkersGuard {
    fn pin(workers: usize) -> Self {
        GridWorkersGuard(GRID_WORKERS.swap(workers, Ordering::Relaxed))
    }
}

impl Drop for GridWorkersGuard {
    fn drop(&mut self) {
        GRID_WORKERS.store(self.0, Ordering::Relaxed);
    }
}

/// Map `f` over `items` on a bounded pool of `workers` scoped threads,
/// returning outputs **in input order** no matter which worker finishes
/// first. Work is distributed by an atomic cursor, so an expensive item
/// never blocks cheap ones behind a static partition.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers have stopped.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = f(item);
                    *slots[i].lock().expect("slot lock") = Some(out);
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload reaches the caller
        // verbatim instead of the scope's generic message.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Run every registered experiment one after another on the calling
/// thread, with in-experiment grid parallelism pinned to one worker —
/// the timing baseline for [`run_all_parallel`]. Results are in paper
/// order.
#[must_use]
pub fn run_all_sequential() -> Vec<ExperimentResult> {
    let _guard = GridWorkersGuard::pin(1);
    all_experiments()
        .into_iter()
        .map(|(_, run)| run())
        .collect()
}

/// Run every registered experiment across `workers` scoped threads.
/// Results are in paper order and identical (to the byte, after JSON
/// rendering) to [`run_all_sequential`]'s.
#[must_use]
pub fn run_all_parallel(workers: usize) -> Vec<ExperimentResult> {
    let entries = all_experiments();
    par_map(&entries, workers, |(_, run)| run())
}

/// Run a single experiment by id through the runner (grids inside it
/// still parallelize via [`par_map`]). `None` for an unknown id.
#[must_use]
pub fn run_one(id: &str) -> Option<ExperimentResult> {
    run_by_id(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[9u32], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn par_map_uneven_costs_still_ordered() {
        // Early items sleep so later items finish first; order must hold.
        let items: Vec<u64> = (0..12).collect();
        let out = par_map(&items, 4, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "grid boom")]
    fn par_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map(&items, 4, |&x| {
            assert!(x != 5, "grid boom");
            x
        });
    }

    #[test]
    fn run_one_matches_registry() {
        let direct = crate::experiments::run_by_id("fig1").expect("fig1 exists");
        let via_runner = run_one("fig1").expect("fig1 exists");
        assert_eq!(direct, via_runner);
        assert!(run_one("nope").is_none());
    }

    #[test]
    fn sequential_pins_grid_workers() {
        let _guard = GridWorkersGuard::pin(1);
        assert_eq!(grid_workers(), 1);
        drop(_guard);
        assert!(grid_workers() >= 1);
    }
}
