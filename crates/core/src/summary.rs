//! Full-paper summary: Table I plus the 12 insights, rendered as text or
//! JSON (the `table1` binary and `EXPERIMENTS.md` use this).

use crate::experiments::{self, ExperimentResult};
use crate::insights::{check_all, InsightCheck};

/// The complete reproduction summary.
#[derive(Debug)]
pub struct PaperSummary {
    /// Table I.
    pub table1: ExperimentResult,
    /// The 12 insight checks.
    pub insights: Vec<InsightCheck>,
}

/// Build the summary (runs the underlying simulations).
#[must_use]
pub fn build() -> PaperSummary {
    PaperSummary {
        table1: experiments::table1::run(),
        insights: check_all(),
    }
}

impl PaperSummary {
    /// Render as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = self.table1.render();
        out.push('\n');
        out.push_str("== 12 insights ==\n");
        for c in &self.insights {
            out.push_str(&format!(
                "[{}] insight {:2}: {}\n    evidence: {}\n",
                if c.holds { "ok" } else { "!!" },
                c.id,
                c.statement,
                c.evidence
            ));
        }
        out
    }

    /// How many insights the reproduction confirms.
    #[must_use]
    pub fn confirmed(&self) -> usize {
        self.insights.iter().filter(|c| c.holds).count()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn summary_confirms_all_insights() {
        let s = super::build();
        assert_eq!(s.confirmed(), 12);
        let text = s.render();
        assert!(text.contains("insight 12"));
        assert!(text.contains("Table I"));
    }
}
