//! The paper's 12 insights as executable checks.
//!
//! Each check re-derives its insight from the simulator (or the threat
//! model) rather than hard-coding the answer; `tests/insights.rs` at the
//! workspace root asserts all twelve hold.

use cllm_hw::{DType, SubNumaClustering};
use cllm_perf::{simulate_cpu, throughput_overhead_pct, CpuTarget, Framework};
use cllm_tee::platform::{CpuTeeConfig, TeeKind};
use cllm_tee::threat::security_score;
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;

/// One verified insight.
#[derive(Debug, Clone, PartialEq)]
pub struct InsightCheck {
    /// Insight number (1-12).
    pub id: u8,
    /// The paper's statement.
    pub statement: &'static str,
    /// Whether the reproduction confirms it.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

fn tdx_thr_overhead(target: &CpuTarget, req: &RequestSpec, dtype: DType) -> f64 {
    let model = zoo::llama2_7b();
    let bare = simulate_cpu(&model, req, dtype, target, &CpuTeeConfig::bare_metal());
    let tdx = simulate_cpu(&model, req, dtype, target, &CpuTeeConfig::tdx());
    throughput_overhead_pct(bare.decode_tps, tdx.decode_tps)
}

/// Evaluate all 12 insights.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn check_all() -> Vec<InsightCheck> {
    let mut out = Vec::with_capacity(12);
    let model = zoo::llama2_7b();
    let thr_req = RequestSpec::new(6, 1024, 128).with_beam(4);
    let emr1 = CpuTarget::emr1_single_socket();
    let emr2 = CpuTarget::emr2_single_socket();

    // 1. TEEs balance security, performance, programmability.
    {
        let tdx = tdx_thr_overhead(&emr1, &thr_req, DType::Bf16);
        let holds = tdx < 15.0 && security_score(TeeKind::Tdx) > 0.8;
        out.push(InsightCheck {
            id: 1,
            statement:
                "TEEs offer a practical balance between security, performance, and programmability",
            holds,
            evidence: format!(
                "TDX overhead {tdx:.1}% with security score {:.0}% (vs HE's ~10,000x overheads)",
                security_score(TeeKind::Tdx) * 100.0
            ),
        });
    }

    // 2. TDX easier to work with than SGX (qualitative: modelled as the
    // development-effort row of Table I; verified via mechanism count).
    {
        let sgx = CpuTeeConfig::sgx();
        let holds = sgx.sgx.is_some(); // SGX needs the libOS machinery TDX does not
        out.push(InsightCheck {
            id: 2,
            statement: "TDX is considerably easier to work with than SGX, especially for complex workloads",
            holds,
            evidence: "SGX requires manifest/libOS machinery (EPC, enclave exits); TDX runs an unmodified VM".to_owned(),
        });
    }

    // 3. IPEX (AMX + oneCCL) doubles CPU inference performance.
    {
        let req = RequestSpec::new(1, 1024, 128);
        let run = |fw| {
            let t = emr1.clone().with_framework(fw);
            let s = simulate_cpu(&model, &req, DType::Bf16, &t, &CpuTeeConfig::bare_metal());
            s.prefill_s + s.token_latencies_s.iter().sum::<f64>()
        };
        let ipex = run(Framework::Ipex);
        let hf = run(Framework::HuggingFace);
        out.push(InsightCheck {
            id: 3,
            statement: "Leveraging IPEX, and its AMX and oneCCL backends can double CPU inference performance",
            holds: hf / ipex > 1.8,
            evidence: format!("HuggingFace is {:.2}x slower than IPEX", hf / ipex),
        });
    }

    // 4. TDX/SGX overheads as low as 4-10%.
    {
        let tdx = tdx_thr_overhead(&emr1, &thr_req, DType::Bf16);
        let bare = simulate_cpu(
            &model,
            &thr_req,
            DType::Bf16,
            &emr1,
            &CpuTeeConfig::bare_metal(),
        );
        let sgx = simulate_cpu(&model, &thr_req, DType::Bf16, &emr1, &CpuTeeConfig::sgx());
        let sgx_o = throughput_overhead_pct(bare.decode_tps, sgx.decode_tps);
        out.push(InsightCheck {
            id: 4,
            statement: "TDX and SGX have overheads as low as 4-10% for cLLM inference, preserving acceptable service performance",
            holds: (4.0..11.0).contains(&tdx) && (4.0..11.0).contains(&sgx_o),
            evidence: format!("TDX {tdx:.1}%, SGX {sgx_o:.1}% single-socket throughput overhead"),
        });
    }

    // 5. SGX more performant; TDX pays a 1-5% virtualization tax.
    {
        let bare = simulate_cpu(
            &model,
            &thr_req,
            DType::Bf16,
            &emr1,
            &CpuTeeConfig::bare_metal(),
        );
        let vm = simulate_cpu(&model, &thr_req, DType::Bf16, &emr1, &CpuTeeConfig::vm());
        let sgx = simulate_cpu(&model, &thr_req, DType::Bf16, &emr1, &CpuTeeConfig::sgx());
        let tdx = simulate_cpu(&model, &thr_req, DType::Bf16, &emr1, &CpuTeeConfig::tdx());
        let virt_tax = throughput_overhead_pct(bare.decode_tps, vm.decode_tps);
        out.push(InsightCheck {
            id: 5,
            statement: "Compared to SGX, TDX simplifies deployment but pays a virtualization tax of 1-5%, making SGX more performant",
            holds: (1.0..5.5).contains(&virt_tax) && sgx.decode_tps > tdx.decode_tps,
            evidence: format!(
                "virtualization tax {virt_tax:.1}%; SGX {:.1} vs TDX {:.1} tok/s",
                sgx.decode_tps, tdx.decode_tps
            ),
        });
    }

    // 6. Broken NUMA support degrades performance badly.
    {
        let t2 = CpuTarget::emr1_dual_socket();
        let m70 = zoo::llama2_70b();
        let req = RequestSpec::new(1, 1024, 32);
        let vm_b = simulate_cpu(&m70, &req, DType::Bf16, &t2, &CpuTeeConfig::vm());
        let tdx = simulate_cpu(&m70, &req, DType::Bf16, &t2, &CpuTeeConfig::tdx());
        let ovh = (tdx.summary.mean / vm_b.summary.mean - 1.0) * 100.0;
        out.push(InsightCheck {
            id: 6,
            statement: "TDX and SGX do not properly support NUMA bindings, considerably degrading performance for models that do not fit one socket",
            holds: ovh > 10.0,
            evidence: format!("70B two-socket: TDX latency {ovh:.0}% over NUMA-bound VM"),
        });
    }

    // 7. TDX ignores reserved 1G hugepages (costs up to ~5%).
    {
        let page = CpuTeeConfig::tdx().effective_page();
        let (fh, _) = crate::experiments::fig6::overheads(&CpuTeeConfig::vm());
        let (th, _) = crate::experiments::fig6::overheads(&CpuTeeConfig::vm_thp());
        let gap = th - fh;
        out.push(InsightCheck {
            id: 7,
            statement: "TDX uses self-allocated transparent hugepages and ignores manually reserved hugepages, costing up to 5% of raw performance",
            holds: page == cllm_hw::PageSize::Huge2M && (1.5..6.5).contains(&gap),
            evidence: format!("TDX runs on {} pages; 1G-vs-2M gap {gap:.1}%", page.label()),
        });
    }

    // 8. AMX reduces TEE overheads.
    {
        let t2 = CpuTarget::emr2_dual_socket();
        let req = RequestSpec::new(1, 128, 128);
        let lat = |amx: bool, tee: &CpuTeeConfig| {
            simulate_cpu(&model, &req, DType::Bf16, &t2.clone().with_amx(amx), tee)
                .summary
                .mean
        };
        let ovh_amx =
            lat(true, &CpuTeeConfig::tdx()) / lat(true, &CpuTeeConfig::bare_metal()) - 1.0;
        let ovh_noamx =
            lat(false, &CpuTeeConfig::tdx()) / lat(false, &CpuTeeConfig::bare_metal()) - 1.0;
        out.push(InsightCheck {
            id: 8,
            statement: "AMX lowers TEE overheads (in addition to raising raw performance)",
            holds: ovh_amx < ovh_noamx,
            evidence: format!(
                "TDX latency overhead {:.1}% with AMX vs {:.1}% without",
                ovh_amx * 100.0,
                ovh_noamx * 100.0
            ),
        });
    }

    // 9. TDX has the lowest overhead when compute-bound.
    {
        let small = tdx_thr_overhead(&emr2, &RequestSpec::new(1, 128, 128), DType::Bf16);
        let large = tdx_thr_overhead(&emr2, &RequestSpec::new(512, 128, 128), DType::Bf16);
        out.push(InsightCheck {
            id: 9,
            statement: "TDX has the lowest overhead when the workload is compute-bound",
            holds: large < small,
            evidence: format!("overhead {small:.1}% at batch 1 vs {large:.1}% at batch 512"),
        });
    }

    // 10. GPU TEEs below 10%, shrinking with batch/input.
    {
        let small = crate::experiments::fig11::overhead(1, 128);
        let large = crate::experiments::fig11::overhead(128, 1024);
        out.push(InsightCheck {
            id: 10,
            statement: "GPU TEEs achieve less than 10% overheads, which decrease with larger batch and input sizes",
            holds: small < 10.0 && large < small,
            evidence: format!("cGPU overhead {small:.1}% (b1/in128) -> {large:.1}% (b128/in1024)"),
        });
    }

    // 11. CPU TEEs pragmatic for strict security / small shapes.
    {
        let adv = {
            let sweep = crate::experiments::fig12::tdx_cost_sweep(1);
            let cpu = cllm_cost::cheapest_point(&sweep).unwrap().usd_per_mtok;
            cllm_cost::cost_advantage_pct(cpu, crate::experiments::fig12::cgpu_usd_per_mtok(1))
        };
        let stricter = security_score(TeeKind::Tdx) > security_score(TeeKind::GpuCc);
        out.push(InsightCheck {
            id: 11,
            statement: "For strictest-security workloads and small LLM shapes where H100s are unsaturated, CPU TEEs offer a pragmatic way to secure inference",
            holds: adv > 20.0 && stricter,
            evidence: format!(
                "batch-1 CPU cost advantage {adv:.0}%; CPU TEE security score exceeds cGPU's"
            ),
        });
    }

    // 12. RAG pipelines see similar TEE overheads.
    {
        let target = CpuTarget::emr2_single_socket();
        let f = cllm_rag::tee::rag_slowdown_factor(&target, &CpuTeeConfig::tdx());
        let pct = (f - 1.0) * 100.0;
        out.push(InsightCheck {
            id: 12,
            statement: "Performance of an entire RAG pipeline in TDX achieves similar overheads to LLM inference",
            holds: (3.0..10.0).contains(&pct),
            evidence: format!("full RAG pipeline TDX overhead {pct:.1}% (paper: 6-7%)"),
        });
    }

    // SNC finding folded into insight 6's area; verified separately in the
    // `snc` experiment.
    debug_assert_eq!(out.len(), 12);
    let _ = SubNumaClustering::Off;
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_twelve_insights_hold() {
        let checks = super::check_all();
        assert_eq!(checks.len(), 12);
        for c in &checks {
            assert!(
                c.holds,
                "Insight {} failed: {} [{}]",
                c.id, c.statement, c.evidence
            );
        }
    }

    #[test]
    fn ids_are_sequential() {
        let checks = super::check_all();
        for (i, c) in checks.iter().enumerate() {
            assert_eq!(usize::from(c.id), i + 1);
        }
    }
}
