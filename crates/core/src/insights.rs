//! The paper's 12 insights as executable checks.
//!
//! Each check re-derives its insight from the simulator (or the threat
//! model) rather than hard-coding the answer; `tests/insights.rs` at the
//! workspace root asserts all twelve hold.
//!
//! Every quantitative piece of evidence is read from the **same memoized
//! simulation points the figures publish** (through
//! [`crate::scenario`] / the figure modules' public accessors), so an
//! insight can never drift from the table cell it cites — and running
//! the insights after the figures adds no new simulations
//! (`tests/cache_reuse.rs` asserts the hit rate).

use crate::experiments::{fig11, fig12, fig3, fig4, fig5, fig6, fig8, fig9};
use cllm_hw::{DType, SubNumaClustering};
use cllm_perf::{overhead_pct, CpuTarget, Framework};
use cllm_tee::platform::{CpuTeeConfig, TeeKind};
use cllm_tee::threat::security_score;

/// One verified insight.
#[derive(Debug, Clone, PartialEq)]
pub struct InsightCheck {
    /// Insight number (1-12).
    pub id: u8,
    /// The paper's statement.
    pub statement: &'static str,
    /// Whether the reproduction confirms it.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

/// Evaluate all 12 insights.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn check_all() -> Vec<InsightCheck> {
    let mut out = Vec::with_capacity(12);

    // 1. TEEs balance security, performance, programmability.
    {
        let tdx = fig4::point(&CpuTeeConfig::tdx(), DType::Bf16).thr_overhead_pct;
        let holds = tdx < 15.0 && security_score(TeeKind::Tdx) > 0.8;
        out.push(InsightCheck {
            id: 1,
            statement:
                "TEEs offer a practical balance between security, performance, and programmability",
            holds,
            evidence: format!(
                "TDX overhead {tdx:.1}% with security score {:.0}% (vs HE's ~10,000x overheads)",
                security_score(TeeKind::Tdx) * 100.0
            ),
        });
    }

    // 2. TDX easier to work with than SGX (qualitative: modelled as the
    // development-effort row of Table I; verified via mechanism count).
    {
        let sgx = CpuTeeConfig::sgx();
        let holds = sgx.sgx.is_some(); // SGX needs the libOS machinery TDX does not
        out.push(InsightCheck {
            id: 2,
            statement: "TDX is considerably easier to work with than SGX, especially for complex workloads",
            holds,
            evidence: "SGX requires manifest/libOS machinery (EPC, enclave exits); TDX runs an unmodified VM".to_owned(),
        });
    }

    // 3. IPEX (AMX + oneCCL) doubles CPU inference performance — the
    // Figure 3 runtimes, re-read from the cache.
    {
        let ipex = fig3::runtime_s(Framework::Ipex, DType::Bf16);
        let hf = fig3::runtime_s(Framework::HuggingFace, DType::Bf16);
        out.push(InsightCheck {
            id: 3,
            statement: "Leveraging IPEX, and its AMX and oneCCL backends can double CPU inference performance",
            holds: hf / ipex > 1.8,
            evidence: format!("HuggingFace is {:.2}x slower than IPEX", hf / ipex),
        });
    }

    // 4. TDX/SGX overheads as low as 4-10% — the Figure 4 bf16 cells.
    {
        let tdx = fig4::point(&CpuTeeConfig::tdx(), DType::Bf16).thr_overhead_pct;
        let sgx_o = fig4::point(&CpuTeeConfig::sgx(), DType::Bf16).thr_overhead_pct;
        out.push(InsightCheck {
            id: 4,
            statement: "TDX and SGX have overheads as low as 4-10% for cLLM inference, preserving acceptable service performance",
            holds: (4.0..11.0).contains(&tdx) && (4.0..11.0).contains(&sgx_o),
            evidence: format!("TDX {tdx:.1}%, SGX {sgx_o:.1}% single-socket throughput overhead"),
        });
    }

    // 5. SGX more performant; TDX pays a 1-5% virtualization tax — all
    // three points are Figure 4 rows.
    {
        let virt_tax = fig4::point(&CpuTeeConfig::vm(), DType::Bf16).thr_overhead_pct;
        let sgx_tps = fig4::point(&CpuTeeConfig::sgx(), DType::Bf16).throughput_tps;
        let tdx_tps = fig4::point(&CpuTeeConfig::tdx(), DType::Bf16).throughput_tps;
        out.push(InsightCheck {
            id: 5,
            statement: "Compared to SGX, TDX simplifies deployment but pays a virtualization tax of 1-5%, making SGX more performant",
            holds: (1.0..5.5).contains(&virt_tax) && sgx_tps > tdx_tps,
            evidence: format!(
                "virtualization tax {virt_tax:.1}%; SGX {sgx_tps:.1} vs TDX {tdx_tps:.1} tok/s"
            ),
        });
    }

    // 6. Broken NUMA support degrades performance badly — the Figure 5
    // operating point (70B, two sockets), TDX vs the NUMA-bound VM.
    {
        let vm_b = fig5::sim(&CpuTeeConfig::vm());
        let tdx = fig5::sim(&CpuTeeConfig::tdx());
        let ovh = overhead_pct(vm_b.summary.mean, tdx.summary.mean);
        out.push(InsightCheck {
            id: 6,
            statement: "TDX and SGX do not properly support NUMA bindings, considerably degrading performance for models that do not fit one socket",
            holds: ovh > 10.0,
            evidence: format!("70B two-socket: TDX latency {ovh:.0}% over NUMA-bound VM"),
        });
    }

    // 7. TDX ignores reserved 1G hugepages (costs up to ~5%) — the
    // Figure 6 VM-vs-VM-THP gap.
    {
        let page = CpuTeeConfig::tdx().effective_page();
        let (fh, _) = fig6::overheads(&CpuTeeConfig::vm());
        let (th, _) = fig6::overheads(&CpuTeeConfig::vm_thp());
        let gap = th - fh;
        out.push(InsightCheck {
            id: 7,
            statement: "TDX uses self-allocated transparent hugepages and ignores manually reserved hugepages, costing up to 5% of raw performance",
            holds: page == cllm_hw::PageSize::Huge2M && (1.5..6.5).contains(&gap),
            evidence: format!("TDX runs on {} pages; 1G-vs-2M gap {gap:.1}%", page.label()),
        });
    }

    // 8. AMX reduces TEE overheads — the Figure 8 two-socket latency
    // columns at batch 1.
    {
        let ovh_amx = fig8::lat_overhead(DType::Bf16, 1, true);
        let ovh_noamx = fig8::lat_overhead(DType::Bf16, 1, false);
        out.push(InsightCheck {
            id: 8,
            statement: "AMX lowers TEE overheads (in addition to raising raw performance)",
            holds: ovh_amx < ovh_noamx,
            evidence: format!(
                "TDX latency overhead {ovh_amx:.1}% with AMX vs {ovh_noamx:.1}% without"
            ),
        });
    }

    // 9. TDX has the lowest overhead when compute-bound — the Figure 9
    // batch-scaling endpoints.
    {
        let small = fig9::thr_overhead(DType::Bf16, 1);
        let large = fig9::thr_overhead(DType::Bf16, 512);
        out.push(InsightCheck {
            id: 9,
            statement: "TDX has the lowest overhead when the workload is compute-bound",
            holds: large < small,
            evidence: format!("overhead {small:.1}% at batch 1 vs {large:.1}% at batch 512"),
        });
    }

    // 10. GPU TEEs below 10%, shrinking with batch/input — the Figure 11
    // corner cells.
    {
        let small = fig11::overhead(1, 128);
        let large = fig11::overhead(128, 1024);
        out.push(InsightCheck {
            id: 10,
            statement: "GPU TEEs achieve less than 10% overheads, which decrease with larger batch and input sizes",
            holds: small < 10.0 && large < small,
            evidence: format!("cGPU overhead {small:.1}% (b1/in128) -> {large:.1}% (b128/in1024)"),
        });
    }

    // 11. CPU TEEs pragmatic for strict security / small shapes — the
    // Figure 12 batch-1 cost columns.
    {
        let adv = {
            let sweep = fig12::tdx_cost_sweep(1);
            let cpu = cllm_cost::cheapest_point(&sweep).unwrap().usd_per_mtok;
            cllm_cost::cost_advantage_pct(cpu, fig12::cgpu_usd_per_mtok(1))
        };
        let stricter = security_score(TeeKind::Tdx) > security_score(TeeKind::GpuCc);
        out.push(InsightCheck {
            id: 11,
            statement: "For strictest-security workloads and small LLM shapes where H100s are unsaturated, CPU TEEs offer a pragmatic way to secure inference",
            holds: adv > 20.0 && stricter,
            evidence: format!(
                "batch-1 CPU cost advantage {adv:.0}%; CPU TEE security score exceeds cGPU's"
            ),
        });
    }

    // 12. RAG pipelines see similar TEE overheads.
    {
        let target = CpuTarget::emr2_single_socket();
        let f = cllm_rag::tee::rag_slowdown_factor(&target, &CpuTeeConfig::tdx());
        let pct = (f - 1.0) * 100.0;
        out.push(InsightCheck {
            id: 12,
            statement: "Performance of an entire RAG pipeline in TDX achieves similar overheads to LLM inference",
            holds: (3.0..10.0).contains(&pct),
            evidence: format!("full RAG pipeline TDX overhead {pct:.1}% (paper: 6-7%)"),
        });
    }

    // SNC finding folded into insight 6's area; verified separately in the
    // `snc` experiment.
    debug_assert_eq!(out.len(), 12);
    let _ = SubNumaClustering::Off;
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_twelve_insights_hold() {
        let checks = super::check_all();
        assert_eq!(checks.len(), 12);
        for c in &checks {
            assert!(
                c.holds,
                "Insight {} failed: {} [{}]",
                c.id, c.statement, c.evidence
            );
        }
    }

    #[test]
    fn ids_are_sequential() {
        let checks = super::check_all();
        for (i, c) in checks.iter().enumerate() {
            assert_eq!(usize::from(c.id), i + 1);
        }
    }

    #[test]
    fn evidence_matches_figure_cells_exactly() {
        // Insight 4's TDX number IS the fig4 bf16 TDX throughput-overhead
        // cell; insight 6's number IS the fig5 TDX lat_vs_vm_bound cell.
        use crate::experiments::{fig4, fig5};
        use cllm_hw::DType;
        use cllm_tee::platform::CpuTeeConfig;

        let fig4_table = fig4::run();
        let cell = fig4_table
            .cell_f64("TDX", "thr_overhead")
            .expect("fig4 TDX row");
        let insight = fig4::point(&CpuTeeConfig::tdx(), DType::Bf16).thr_overhead_pct;
        // cell_f64 returns the raw numeric behind the cell, and both sides
        // read the same cached simulation — the match is exact.
        assert!(
            (cell - insight).abs() < 1e-12,
            "fig4 cell {cell} vs insight {insight}"
        );

        let fig5_table = fig5::run();
        let cell = fig5_table
            .cell_f64("TDX", "lat_vs_vm_bound")
            .expect("fig5 TDX row");
        let vm_b = fig5::sim(&CpuTeeConfig::vm());
        let tdx = fig5::sim(&CpuTeeConfig::tdx());
        let insight = cllm_perf::overhead_pct(vm_b.summary.mean, tdx.summary.mean);
        assert!(
            (cell - insight).abs() < 1e-12,
            "fig5 cell {cell} vs insight {insight}"
        );
    }
}
