//! Typed result tables: the paper's numbers kept as numbers.
//!
//! The experiment layer used to format every metric into strings at the
//! point of measurement, which forced downstream consumers (insights,
//! cost analyses, plots) to either re-simulate or scrape the strings
//! back apart. This module moves formatting to the presentation edge:
//!
//! * [`Value`] — one table cell, carrying the raw numeric ([`Value::Int`],
//!   [`Value::Float`] with unit + display precision) or text.
//! * [`Column`] — a typed column descriptor; rows are validated against
//!   the declared schema on insertion.
//! * [`TypedResult`] — a titled table of typed cells plus notes. Text
//!   rendering ([`TypedResult::render`]) and JSON ([`TypedResult::to_json`])
//!   are derived views; the raw numerics stay addressable through
//!   [`TypedResult::cell_f64`] / [`TypedResult::cell_i64`].
//!
//! The JSON view is versioned ([`SCHEMA_VERSION`]): version 2 keeps the
//! version-1 fields (`columns` as names, `rows` as formatted strings)
//! and adds `schema` (typed column descriptors) and `raw_rows` (raw
//! numeric cells, `null` for missing values).

use std::fmt;

/// Version stamp of the JSON layout emitted by [`TypedResult::to_json`].
///
/// * `1` (implicit, never emitted): the historical stringly format —
///   `columns` as a name array, `rows` as formatted strings.
/// * `2`: adds `schema_version`, `schema` and `raw_rows` while keeping
///   every version-1 field byte-compatible.
pub const SCHEMA_VERSION: u64 = 2;

/// Physical unit of a float cell. Only [`Unit::Percent`] and
/// [`Unit::Speedup`] affect text rendering (as `%` / `x` suffixes); the
/// rest are metadata carried into the JSON schema so consumers need not
/// guess what a column measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless quantity.
    None,
    /// Percent; renders with a `%` suffix.
    Percent,
    /// Multiplicative speedup/ratio; renders with an `x` suffix.
    Speedup,
    /// Tokens per second.
    TokensPerSec,
    /// Seconds.
    Seconds,
    /// Milliseconds.
    Millis,
    /// Microseconds.
    Micros,
    /// Gibibytes.
    Gib,
    /// US dollars per hour.
    UsdPerHr,
    /// US dollars per million generated tokens.
    UsdPerMtok,
    /// Difference in percentage points.
    Points,
    /// Billions of parameters.
    BillionParams,
}

impl Unit {
    /// Machine-readable unit label used in the JSON schema.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Unit::None => "",
            Unit::Percent => "%",
            Unit::Speedup => "x",
            Unit::TokensPerSec => "tok/s",
            Unit::Seconds => "s",
            Unit::Millis => "ms",
            Unit::Micros => "us",
            Unit::Gib => "GiB",
            Unit::UsdPerHr => "$/hr",
            Unit::UsdPerMtok => "$/Mtok",
            Unit::Points => "pts",
            Unit::BillionParams => "Bparams",
        }
    }

    /// Suffix appended when rendering a cell as text (empty for most
    /// units — the historical tables carried units in column names).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Percent => "%",
            Unit::Speedup => "x",
            _ => "",
        }
    }
}

/// One typed table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Free-form text (labels, qualitative cells).
    Str(String),
    /// Integer quantity (batch sizes, core counts, token counts).
    Int(i64),
    /// Float quantity with its unit and display precision.
    Float {
        /// The raw, unrounded value.
        value: f64,
        /// What the value measures.
        unit: Unit,
        /// Decimal places used when rendering.
        precision: usize,
    },
    /// Not applicable for this row; renders as `-`, serializes as `null`.
    Missing,
}

impl Value {
    /// Text cell.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Integer cell.
    #[must_use]
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Integer cell from an unsigned count.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `i64::MAX` (no experiment axis does).
    #[must_use]
    pub fn uint(v: u64) -> Self {
        Value::Int(i64::try_from(v).expect("axis value fits i64"))
    }

    /// Float cell with an explicit unit and display precision.
    #[must_use]
    pub fn float(value: f64, unit: Unit, precision: usize) -> Self {
        Value::Float {
            value,
            unit,
            precision,
        }
    }

    /// Percent cell with the table convention of one decimal.
    #[must_use]
    pub fn pct(value: f64) -> Self {
        Value::float(value, Unit::Percent, 1)
    }

    /// Render this cell the way the text tables print it.
    #[must_use]
    pub fn format(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(v) => v.to_string(),
            Value::Float {
                value,
                unit,
                precision,
            } => format!("{value:.precision$}{}", unit.suffix()),
            Value::Missing => "-".to_owned(),
        }
    }

    /// The raw numeric value: floats as-is, integers widened. `None` for
    /// text and missing cells.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float { value, .. } => Some(*value),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The integer value, `None` for any other variant (floats are not
    /// silently truncated).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The text value, `None` for any other variant.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short label of the variant, used in schema-mismatch errors.
    #[must_use]
    pub fn kind_label(&self) -> &'static str {
        match self {
            Value::Str(_) => "str",
            Value::Int(_) => "int",
            Value::Float { .. } => "float",
            Value::Missing => "missing",
        }
    }

    /// Raw JSON form: the unformatted number, the string, or `null` for
    /// missing cells.
    #[must_use]
    pub fn to_raw_json(&self) -> serde_json::Value {
        match self {
            Value::Str(s) => serde_json::Value::String(s.clone()),
            Value::Int(v) => int_json(*v),
            Value::Float { value, .. } => {
                serde_json::Value::Number(serde_json::Number::Float(*value))
            }
            Value::Missing => serde_json::Value::Null,
        }
    }
}

fn int_json(v: i64) -> serde_json::Value {
    let number = u64::try_from(v).map_or(serde_json::Number::NegInt(v), serde_json::Number::PosInt);
    serde_json::Value::Number(number)
}

/// Expected type of every cell in a [`Column`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Text cells.
    Str,
    /// Integer cells.
    Int,
    /// Float cells; unit **and** precision must match, so a column
    /// renders homogeneously.
    Float {
        /// Unit every cell of the column must carry.
        unit: Unit,
        /// Display precision every cell of the column must carry.
        precision: usize,
    },
}

impl ColumnKind {
    fn label(self) -> &'static str {
        match self {
            ColumnKind::Str => "str",
            ColumnKind::Int => "int",
            ColumnKind::Float { .. } => "float",
        }
    }
}

/// A typed column descriptor: name plus the cell type it accepts.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Header name (identical to the historical string headers).
    pub name: String,
    /// Cell type the column accepts.
    pub kind: ColumnKind,
}

impl Column {
    /// Text column.
    #[must_use]
    pub fn str(name: &str) -> Self {
        Column {
            name: name.to_owned(),
            kind: ColumnKind::Str,
        }
    }

    /// Integer column.
    #[must_use]
    pub fn int(name: &str) -> Self {
        Column {
            name: name.to_owned(),
            kind: ColumnKind::Int,
        }
    }

    /// Float column with a unit and display precision.
    #[must_use]
    pub fn float(name: &str, unit: Unit, precision: usize) -> Self {
        Column {
            name: name.to_owned(),
            kind: ColumnKind::Float { unit, precision },
        }
    }

    /// Percent column with the table convention of one decimal.
    #[must_use]
    pub fn pct(name: &str) -> Self {
        Column::float(name, Unit::Percent, 1)
    }

    /// Whether `value` is acceptable in this column. [`Value::Missing`]
    /// is accepted everywhere; typed cells must match the declared kind
    /// exactly (for floats: unit and precision included).
    #[must_use]
    pub fn accepts(&self, value: &Value) -> bool {
        match (&self.kind, value) {
            (_, Value::Missing) => true,
            (ColumnKind::Str, Value::Str(_)) | (ColumnKind::Int, Value::Int(_)) => true,
            (
                ColumnKind::Float { unit, precision },
                Value::Float {
                    unit: vu,
                    precision: vp,
                    ..
                },
            ) => unit == vu && precision == vp,
            _ => false,
        }
    }
}

/// A row rejected by the declared schema.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The row has a different number of cells than the header.
    Arity {
        /// Number of declared columns.
        expected: usize,
        /// Number of cells in the rejected row.
        got: usize,
    },
    /// A cell's type does not match its column descriptor.
    TypeMismatch {
        /// Name of the offending column.
        column: String,
        /// Zero-based index of the offending column.
        index: usize,
        /// The declared column kind.
        expected: ColumnKind,
        /// The label of the rejected value's variant.
        got: &'static str,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Arity { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} cells, got {got}"
                )
            }
            SchemaError::TypeMismatch {
                column,
                index,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column {index} ({column}): expected {}, got {got}",
                expected.label()
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A typed experiment result: a titled table of [`Value`] cells plus
/// free-form notes. This is what every experiment runner returns; the
/// historical name [`crate::experiments::ExperimentResult`] aliases it.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedResult {
    /// Short id, e.g. `"fig4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Typed column descriptors.
    pub columns: Vec<Column>,
    /// Typed row cells (validated against `columns` on insertion).
    pub rows: Vec<Vec<Value>>,
    /// Free-form notes: paper bands, measured values, caveats.
    pub notes: Vec<String>,
}

impl TypedResult {
    /// Start a result with a declared schema.
    #[must_use]
    pub fn new(id: &str, title: &str, columns: Vec<Column>) -> Self {
        TypedResult {
            id: id.to_owned(),
            title: title.to_owned(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row, validating arity and cell types against the schema.
    ///
    /// # Errors
    ///
    /// [`SchemaError::Arity`] when the cell count differs from the
    /// header, [`SchemaError::TypeMismatch`] when a cell's variant (or a
    /// float's unit/precision) differs from its column descriptor.
    pub fn try_push_row(&mut self, cells: Vec<Value>) -> Result<(), SchemaError> {
        if cells.len() != self.columns.len() {
            return Err(SchemaError::Arity {
                expected: self.columns.len(),
                got: cells.len(),
            });
        }
        for (index, (column, cell)) in self.columns.iter().zip(&cells).enumerate() {
            if !column.accepts(cell) {
                return Err(SchemaError::TypeMismatch {
                    column: column.name.clone(),
                    index,
                    expected: column.kind,
                    got: cell.kind_label(),
                });
            }
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics on arity or type mismatch (see [`TypedResult::try_push_row`]).
    pub fn push_row(&mut self, cells: Vec<Value>) {
        if let Err(e) = self.try_push_row(cells) {
            panic!("{}: {e}", self.id);
        }
    }

    /// Append every row of a sweep (see [`crate::scenario::Sweep`]).
    ///
    /// # Panics
    ///
    /// Panics on arity or type mismatch, like [`TypedResult::push_row`].
    pub fn extend_rows(&mut self, rows: Vec<Vec<Value>>) {
        for row in rows {
            self.push_row(row);
        }
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as an aligned text table. Lines never carry trailing
    /// whitespace (cells are padded only up to the last non-empty one).
    #[must_use]
    pub fn render(&self) -> String {
        let formatted: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Value::format).collect())
            .collect();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name.len()).collect();
        for row in &formatted {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String]| {
            let line = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ");
            line.trim_end().to_owned()
        };
        let header: Vec<String> = self.columns.iter().map(|c| c.name.clone()).collect();
        out.push_str(&fmt_row(&header));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &formatted {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Serialize to a JSON value (schema version [`SCHEMA_VERSION`]).
    ///
    /// Layout: `schema_version`, `id`, `title`, `columns` (names, as in
    /// version 1), `schema` (typed descriptors), `rows` (formatted
    /// strings, as in version 1), `raw_rows` (raw numerics; `null` for
    /// missing cells), `notes`.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value as J;
        let columns = J::Array(
            self.columns
                .iter()
                .map(|c| J::String(c.name.clone()))
                .collect(),
        );
        let schema = J::Array(self.columns.iter().map(column_schema_json).collect());
        let rows = J::Array(
            self.rows
                .iter()
                .map(|row| J::Array(row.iter().map(|c| J::String(c.format())).collect()))
                .collect(),
        );
        let raw_rows = J::Array(
            self.rows
                .iter()
                .map(|row| J::Array(row.iter().map(Value::to_raw_json).collect()))
                .collect(),
        );
        let notes = J::Array(self.notes.iter().cloned().map(J::String).collect());
        J::Object(vec![
            (
                "schema_version".to_owned(),
                J::Number(serde_json::Number::PosInt(SCHEMA_VERSION)),
            ),
            ("id".to_owned(), J::String(self.id.clone())),
            ("title".to_owned(), J::String(self.title.clone())),
            ("columns".to_owned(), columns),
            ("schema".to_owned(), schema),
            ("rows".to_owned(), rows),
            ("raw_rows".to_owned(), raw_rows),
            ("notes".to_owned(), notes),
        ])
    }

    /// Index of a column by header name.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// First row whose key (formatted first column) equals `row_key`.
    /// When several rows share a key — grid sweeps repeat the first axis
    /// — the **first** match wins, in table order.
    #[must_use]
    pub fn row_by_key(&self, row_key: &str) -> Option<&[Value]> {
        self.rows
            .iter()
            .find(|r| r.first().is_some_and(|c| c.format() == row_key))
            .map(Vec::as_slice)
    }

    /// Typed cell lookup by row key (formatted first column) and column
    /// header. First matching row wins (see [`TypedResult::row_by_key`]).
    #[must_use]
    pub fn cell_value(&self, row_key: &str, column: &str) -> Option<&Value> {
        let col = self.column_index(column)?;
        self.row_by_key(row_key)?.get(col)
    }

    /// Formatted cell lookup — the string the text table prints.
    #[must_use]
    pub fn cell(&self, row_key: &str, column: &str) -> Option<String> {
        self.cell_value(row_key, column).map(Value::format)
    }

    /// Raw float lookup: the unrounded value behind a float (or int)
    /// cell. `None` for unknown keys/columns and for text/missing cells.
    #[must_use]
    pub fn cell_f64(&self, row_key: &str, column: &str) -> Option<f64> {
        self.cell_value(row_key, column)?.as_f64()
    }

    /// Raw integer lookup. `None` for unknown keys/columns and for any
    /// non-integer cell (floats are not truncated).
    #[must_use]
    pub fn cell_i64(&self, row_key: &str, column: &str) -> Option<i64> {
        self.cell_value(row_key, column)?.as_i64()
    }
}

fn column_schema_json(column: &Column) -> serde_json::Value {
    use serde_json::Value as J;
    let mut fields = vec![
        ("name".to_owned(), J::String(column.name.clone())),
        ("type".to_owned(), J::String(column.kind.label().to_owned())),
    ];
    if let ColumnKind::Float { unit, precision } = column.kind {
        fields.push(("unit".to_owned(), J::String(unit.label().to_owned())));
        fields.push((
            "precision".to_owned(),
            J::Number(serde_json::Number::PosInt(precision as u64)),
        ));
    }
    J::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> TypedResult {
        let mut r = TypedResult::new(
            "t",
            "demo",
            vec![
                Column::str("key"),
                Column::int("batch"),
                Column::float("tps", Unit::TokensPerSec, 1),
                Column::pct("ovh"),
            ],
        );
        r.push_row(vec![
            Value::str("a"),
            Value::int(1),
            Value::float(17.25, Unit::TokensPerSec, 1),
            Value::pct(13.0789),
        ]);
        r.push_row(vec![
            Value::str("a"),
            Value::int(64),
            Value::float(240.0, Unit::TokensPerSec, 1),
            Value::pct(8.5),
        ]);
        r.push_row(vec![
            Value::str("b"),
            Value::int(1),
            Value::Missing,
            Value::pct(9.96),
        ]);
        r
    }

    #[test]
    fn formats_match_the_historical_helpers() {
        assert_eq!(Value::pct(13.0789).format(), "13.1%");
        assert_eq!(Value::float(1.987, Unit::Speedup, 2).format(), "1.99x");
        assert_eq!(Value::float(17.4, Unit::TokensPerSec, 0).format(), "17");
        assert_eq!(Value::int(512).format(), "512");
        assert_eq!(Value::uint(512).format(), "512");
        assert_eq!(Value::Missing.format(), "-");
    }

    #[test]
    fn render_has_no_trailing_whitespace() {
        let r = demo();
        let text = r.render();
        for line in text.lines() {
            assert_eq!(line, line.trim_end(), "trailing whitespace in {line:?}");
        }
        // The short last cell must not be padded out to the header width.
        assert!(text.contains("13.1%\n"), "{text}");
    }

    #[test]
    fn render_aligns_and_includes_notes() {
        let mut r = demo();
        r.note("hello");
        let s = r.render();
        assert!(s.contains("batch"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut r = demo();
        let err = r
            .try_push_row(vec![Value::str("only-one")])
            .expect_err("arity must be validated");
        assert_eq!(
            err,
            SchemaError::Arity {
                expected: 4,
                got: 1
            }
        );
        assert!(err.to_string().contains("row arity mismatch"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn push_row_panics_on_arity() {
        demo().push_row(vec![Value::str("only-one")]);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut r = demo();
        let err = r
            .try_push_row(vec![
                Value::str("c"),
                Value::str("not-an-int"),
                Value::float(1.0, Unit::TokensPerSec, 1),
                Value::pct(1.0),
            ])
            .expect_err("type must be validated");
        match &err {
            SchemaError::TypeMismatch {
                column, index, got, ..
            } => {
                assert_eq!(column, "batch");
                assert_eq!(*index, 1);
                assert_eq!(*got, "str");
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn float_unit_and_precision_are_part_of_the_schema() {
        let mut r = demo();
        // Right variant, wrong unit.
        assert!(r
            .try_push_row(vec![
                Value::str("c"),
                Value::int(1),
                Value::float(1.0, Unit::Millis, 1),
                Value::pct(1.0),
            ])
            .is_err());
        // Right unit, wrong precision.
        assert!(r
            .try_push_row(vec![
                Value::str("c"),
                Value::int(1),
                Value::float(1.0, Unit::TokensPerSec, 3),
                Value::pct(1.0),
            ])
            .is_err());
    }

    #[test]
    fn missing_is_accepted_in_any_column() {
        let mut r = demo();
        r.push_row(vec![
            Value::Missing,
            Value::Missing,
            Value::Missing,
            Value::Missing,
        ]);
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn typed_accessors_return_raw_values() {
        let r = demo();
        assert_eq!(r.cell("a", "ovh"), Some("13.1%".to_owned()));
        assert_eq!(r.cell_f64("a", "ovh"), Some(13.0789));
        assert_eq!(r.cell_i64("a", "batch"), Some(1));
        // Int cells widen through cell_f64; float cells refuse cell_i64.
        assert_eq!(r.cell_f64("a", "batch"), Some(1.0));
        assert_eq!(r.cell_i64("a", "ovh"), None);
        // Missing and text cells have no numeric value.
        assert_eq!(r.cell_f64("b", "tps"), None);
        assert_eq!(r.cell("b", "tps"), Some("-".to_owned()));
        // Unknown keys and columns.
        assert_eq!(r.cell("zz", "ovh"), None);
        assert_eq!(r.cell_f64("a", "nope"), None);
    }

    #[test]
    fn duplicate_row_keys_resolve_to_first_match() {
        let r = demo();
        // Two rows share key "a"; lookups must return the first (batch 1).
        assert_eq!(r.cell_i64("a", "batch"), Some(1));
        assert_eq!(r.cell_f64("a", "tps"), Some(17.25));
    }

    #[test]
    fn json_carries_schema_version_and_raw_values() {
        let r = demo();
        let json = r.to_json();
        assert_eq!(
            json.get("schema_version")
                .and_then(serde_json::Value::as_f64),
            Some(2.0)
        );
        // Version-1 fields survive: columns as names, rows as strings.
        let cols = json.get("columns").and_then(|v| v.as_array()).unwrap();
        assert_eq!(cols[1].as_str(), Some("batch"));
        let rows = json.get("rows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows[0].as_array().unwrap()[3].as_str(), Some("13.1%"));
        // Raw rows keep the unrounded numerics; missing cells are null.
        let raw = json.get("raw_rows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(raw[0].as_array().unwrap()[3].as_f64(), Some(13.0789));
        assert_eq!(raw[2].as_array().unwrap()[2], serde_json::Value::Null);
        // Schema describes float columns with unit and precision.
        let schema = json.get("schema").and_then(|v| v.as_array()).unwrap();
        let ovh = &schema[3];
        assert_eq!(ovh.get("type").and_then(|v| v.as_str()), Some("float"));
        assert_eq!(ovh.get("unit").and_then(|v| v.as_str()), Some("%"));
        assert_eq!(
            ovh.get("precision").and_then(serde_json::Value::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn negative_ints_serialize_raw() {
        let mut r = TypedResult::new("t", "neg", vec![Column::int("delta")]);
        r.push_row(vec![Value::int(-3)]);
        let json = r.to_json();
        let raw = json.get("raw_rows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(raw[0].as_array().unwrap()[0].as_f64(), Some(-3.0));
    }
}
