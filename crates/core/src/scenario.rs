//! Declarative sweep layer: operating points and grids as data.
//!
//! Every experiment in the paper evaluates a grid — model × dtype ×
//! batch/input × target × TEE — and compares each point against a
//! baseline (bare metal on CPU, native on GPU). Runners used to
//! hand-roll the same `flat_map` + `par_map` + formatting boilerplate;
//! this module factors it into three pieces:
//!
//! * [`CpuScenario`] / [`GpuScenario`] — one fully-specified operating
//!   point. [`CpuScenario::simulate`] always goes through the memoized
//!   `cllm_perf` cache, so an insight asking for the same point a figure
//!   published is a cache hit, not a re-simulation. The point's identity
//!   is its cache key ([`CpuScenario::cache_key`]), reused verbatim from
//!   `cllm_perf::cache`.
//! * [`grid2`] / [`grid3`] — cartesian grids in row-major (paper) order.
//! * [`Sweep`] — owns `par_map` dispatch over a grid: points evaluate on
//!   the runner's worker pool, rows come back in grid order, and
//!   [`Sweep::rows`] feeds straight into
//!   [`TypedResult::extend_rows`](crate::table::TypedResult::extend_rows).

use crate::runner;
use crate::table::Value;
use cllm_hw::{DType, GpuModel};
use cllm_perf::{cache, overhead_pct, throughput_overhead_pct, CpuTarget, GpuSimResult, SimResult};
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig};
use cllm_workload::phase::RequestSpec;
use cllm_workload::{zoo, ModelConfig};
use std::sync::Arc;

/// One CPU operating point: everything [`cllm_perf::simulate_cpu`] needs.
///
/// Defaults mirror the paper's main CPU testbed: Llama2-7B, bf16, one
/// EMR2 socket, TDX. Override any axis with the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuScenario {
    /// Model under test.
    pub model: ModelConfig,
    /// Request shape (batch / input / output / beam).
    pub req: RequestSpec,
    /// Numeric precision.
    pub dtype: DType,
    /// Hardware target (sockets, cores, AMX, framework).
    pub target: CpuTarget,
    /// TEE configuration (bare metal, VM, SGX, TDX, SEV-SNP…).
    pub tee: CpuTeeConfig,
}

impl CpuScenario {
    /// A point on the paper's default CPU testbed: Llama2-7B, bf16,
    /// single-socket EMR2, TDX.
    #[must_use]
    pub fn llama2_7b(req: RequestSpec) -> Self {
        CpuScenario {
            model: zoo::llama2_7b(),
            req,
            dtype: DType::Bf16,
            target: CpuTarget::emr2_single_socket(),
            tee: CpuTeeConfig::tdx(),
        }
    }

    /// Same point with a different model.
    #[must_use]
    pub fn with_model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Same point with a different request shape.
    #[must_use]
    pub fn with_req(mut self, req: RequestSpec) -> Self {
        self.req = req;
        self
    }

    /// Same point with a different dtype.
    #[must_use]
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Same point with a different hardware target.
    #[must_use]
    pub fn with_target(mut self, target: CpuTarget) -> Self {
        self.target = target;
        self
    }

    /// Same point with a different TEE configuration.
    #[must_use]
    pub fn with_tee(mut self, tee: CpuTeeConfig) -> Self {
        self.tee = tee;
        self
    }

    /// Same point on bare metal — the baseline every CPU overhead in the
    /// paper divides by.
    #[must_use]
    pub fn baseline(&self) -> Self {
        self.clone().with_tee(CpuTeeConfig::bare_metal())
    }

    /// The point's identity in the `cllm_perf` memoization cache.
    #[must_use]
    pub fn cache_key(&self) -> String {
        cache::cpu_key(&self.model, &self.req, self.dtype, &self.target, &self.tee)
    }

    /// Simulate this point through the memoized cache. Repeat calls for
    /// the same point — from figures, insights or tests — share one
    /// simulation.
    #[must_use]
    pub fn simulate(&self) -> Arc<SimResult> {
        cache::simulate_cpu_cached(&self.model, &self.req, self.dtype, &self.target, &self.tee)
    }

    /// Decode-throughput overhead of this point vs its bare-metal
    /// [`CpuScenario::baseline`], percent.
    #[must_use]
    pub fn thr_overhead(&self) -> f64 {
        throughput_overhead_pct(
            self.baseline().simulate().decode_tps,
            self.simulate().decode_tps,
        )
    }

    /// Mean next-token latency overhead of this point vs its bare-metal
    /// [`CpuScenario::baseline`], percent.
    #[must_use]
    pub fn lat_overhead(&self) -> f64 {
        overhead_pct(
            self.baseline().simulate().summary.mean,
            self.simulate().summary.mean,
        )
    }
}

/// One GPU operating point: everything [`cllm_perf::simulate_gpu`] needs.
///
/// Defaults mirror the paper's main GPU testbed: Llama2-7B, bf16, one
/// H100 NVL, confidential computing on.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuScenario {
    /// Model under test.
    pub model: ModelConfig,
    /// Request shape (batch / input / output / beam).
    pub req: RequestSpec,
    /// Numeric precision.
    pub dtype: DType,
    /// GPU under test.
    pub gpu: GpuModel,
    /// GPU TEE configuration (native or confidential).
    pub cfg: GpuTeeConfig,
}

impl GpuScenario {
    /// A point on the paper's default GPU testbed: Llama2-7B, bf16,
    /// H100 NVL, confidential mode.
    #[must_use]
    pub fn llama2_7b(req: RequestSpec) -> Self {
        GpuScenario {
            model: zoo::llama2_7b(),
            req,
            dtype: DType::Bf16,
            gpu: cllm_hw::presets::h100_nvl(),
            cfg: GpuTeeConfig::confidential(),
        }
    }

    /// Same point with a different model.
    #[must_use]
    pub fn with_model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Same point with a different request shape.
    #[must_use]
    pub fn with_req(mut self, req: RequestSpec) -> Self {
        self.req = req;
        self
    }

    /// Same point with a different dtype.
    #[must_use]
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Same point on a different GPU.
    #[must_use]
    pub fn with_gpu(mut self, gpu: GpuModel) -> Self {
        self.gpu = gpu;
        self
    }

    /// Same point with a different GPU TEE configuration.
    #[must_use]
    pub fn with_cfg(mut self, cfg: GpuTeeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Same point in native (non-confidential) mode — the baseline every
    /// GPU overhead in the paper divides by.
    #[must_use]
    pub fn baseline(&self) -> Self {
        self.clone().with_cfg(GpuTeeConfig::native())
    }

    /// The point's identity in the `cllm_perf` memoization cache.
    #[must_use]
    pub fn cache_key(&self) -> String {
        cache::gpu_key(&self.model, &self.req, self.dtype, &self.gpu, &self.cfg)
    }

    /// Simulate this point through the memoized cache.
    #[must_use]
    pub fn simulate(&self) -> Arc<GpuSimResult> {
        cache::simulate_gpu_cached(&self.model, &self.req, self.dtype, &self.gpu, &self.cfg)
    }

    /// End-to-end-throughput overhead of this point vs its native
    /// [`GpuScenario::baseline`], percent.
    #[must_use]
    pub fn e2e_overhead(&self) -> f64 {
        throughput_overhead_pct(self.baseline().simulate().e2e_tps, self.simulate().e2e_tps)
    }

    /// Decode-throughput overhead of this point vs its native
    /// [`GpuScenario::baseline`], percent.
    #[must_use]
    pub fn decode_overhead(&self) -> f64 {
        throughput_overhead_pct(
            self.baseline().simulate().decode_tps,
            self.simulate().decode_tps,
        )
    }
}

/// Cartesian grid of two axes in row-major order: `a` is the slow
/// (outer) axis, matching the paper's dtype-major table layout.
#[must_use]
pub fn grid2<A: Copy, B: Copy>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    a.iter()
        .flat_map(|&x| b.iter().map(move |&y| (x, y)))
        .collect()
}

/// Cartesian grid of three axes in row-major order (`a` slowest).
#[must_use]
pub fn grid3<A: Copy, B: Copy, C: Copy>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    a.iter()
        .flat_map(|&x| grid2(b, c).into_iter().map(move |(y, z)| (x, y, z)))
        .collect()
}

/// A declarative sweep: a list of grid points evaluated on the runner's
/// worker pool, producing outputs **in grid order** regardless of which
/// worker finishes first.
///
/// Parallelism follows [`runner::grid_workers`], so a sequential baseline
/// run (`run_all_sequential`) automatically pins sweeps to one worker.
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    points: Vec<P>,
}

impl<P: Sync> Sweep<P> {
    /// Sweep over an explicit point list (typically from [`grid2`] /
    /// [`grid3`] or a constant axis array).
    #[must_use]
    pub fn over(points: impl Into<Vec<P>>) -> Self {
        Sweep {
            points: points.into(),
        }
    }

    /// The grid points, in evaluation (row) order.
    #[must_use]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Evaluate `f` at every point on the worker pool; outputs are in
    /// grid order.
    pub fn map<U: Send>(&self, f: impl Fn(&P) -> U + Sync) -> Vec<U> {
        runner::par_map(&self.points, runner::grid_workers(), f)
    }

    /// Evaluate one table row per point — the common case; feed the
    /// result to [`TypedResult::extend_rows`](crate::table::TypedResult::extend_rows).
    pub fn rows(&self, f: impl Fn(&P) -> Vec<Value> + Sync) -> Vec<Vec<Value>> {
        self.map(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn grids_are_row_major() {
        assert_eq!(
            grid2(&[1, 2], &["a", "b"]),
            vec![(1, "a"), (1, "b"), (2, "a"), (2, "b")]
        );
        let g3 = grid3(&[1, 2], &[10, 20], &[100]);
        assert_eq!(g3[0], (1, 10, 100));
        assert_eq!(g3[1], (1, 20, 100));
        assert_eq!(g3[2], (2, 10, 100));
        assert_eq!(g3.len(), 4);
    }

    #[test]
    fn sweep_preserves_grid_order() {
        let sweep = Sweep::over(grid2(&[1u64, 2, 3], &[10u64, 20]));
        let out = sweep.map(|&(a, b)| a * 100 + b);
        assert_eq!(out, vec![110, 120, 210, 220, 310, 320]);
        assert_eq!(sweep.points().len(), 6);
    }

    #[test]
    fn cpu_scenario_is_cached_by_key() {
        let s = CpuScenario::llama2_7b(RequestSpec::new(2, 64, 8));
        let t = s.clone();
        assert_eq!(s.cache_key(), t.cache_key());
        assert_ne!(s.cache_key(), s.baseline().cache_key());
        let a = s.simulate();
        let b = t.simulate();
        assert!(StdArc::ptr_eq(&a, &b), "same key must share one entry");
    }

    #[test]
    fn cpu_overheads_compare_against_bare_metal() {
        let s = CpuScenario::llama2_7b(RequestSpec::new(1, 128, 16));
        let thr = s.thr_overhead();
        let lat = s.lat_overhead();
        assert!(thr > 0.0, "TDX must cost throughput: {thr}%");
        assert!(lat > 0.0, "TDX must cost latency: {lat}%");
        // The baseline's own overhead is identically zero.
        assert!(s.baseline().thr_overhead().abs() < 1e-9);
    }

    #[test]
    fn gpu_scenario_baseline_is_native() {
        let s = GpuScenario::llama2_7b(RequestSpec::new(4, 128, 16));
        assert_eq!(s.baseline().cfg, GpuTeeConfig::native());
        let o = s.e2e_overhead();
        assert!(o > 0.0, "confidential mode must cost throughput: {o}%");
        assert!(s.baseline().e2e_overhead().abs() < 1e-9);
    }

    #[test]
    fn builders_override_each_axis() {
        let s = CpuScenario::llama2_7b(RequestSpec::new(1, 64, 8))
            .with_dtype(DType::Int8)
            .with_target(CpuTarget::emr1_single_socket())
            .with_tee(CpuTeeConfig::vm());
        assert_eq!(s.dtype, DType::Int8);
        assert_eq!(s.target, CpuTarget::emr1_single_socket());
        assert_eq!(s.tee, CpuTeeConfig::vm());
        let g = GpuScenario::llama2_7b(RequestSpec::new(1, 64, 8))
            .with_gpu(cllm_hw::presets::h100_nvl())
            .with_cfg(GpuTeeConfig::native());
        assert_eq!(g.cfg, GpuTeeConfig::native());
    }
}
