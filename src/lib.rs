//! Facade crate for the *Confidential LLM Inference* reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use confidential_llms_in_tees::...`.

#![forbid(unsafe_code)]

pub use cllm_core as core;
pub use cllm_cost as cost;
pub use cllm_crypto as crypto;
pub use cllm_hw as hw;
pub use cllm_infer as infer;
pub use cllm_obs as obs;
pub use cllm_perf as perf;
pub use cllm_rag as rag;
pub use cllm_retrieval as retrieval;
pub use cllm_serve as serve;
pub use cllm_tee as tee;
pub use cllm_workload as workload;
