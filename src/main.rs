//! `cllm` — command-line interface to the confidential-LLM toolkit.
//!
//! ```text
//! cllm figures [id]                      regenerate paper tables/figures
//! cllm insights                          check the paper's 12 insights
//! cllm deploy [--platform P]             attest + generate a demo completion
//! cllm estimate [--platform P] [...]     predict perf for a request shape
//! cllm plan [--batch N] [--input N]      CPU-vs-cGPU cost recommendation
//! cllm serve [--rate R] [--platform P]   online serving SLO report
//!            [--kv-policy conservative|recompute|swap] [--kv-block-tokens N]
//!            [--kv-pool-gib G]              ... paged KV cache with the chosen
//!                                           preemption policy, page size and
//!                                           page-pool arena
//!            [--faults S] [--fault-seed N]  ... under an injected fault schedule
//!            [--nodes SPEC] [--failover on|off] [--waves W] [--wave-frac F]
//!                                           ... on a multi-node cluster
//!            [--autoscale] [--warm-pool N] [--brownout] [--burst-mult M]
//!            [--max-rented N] [--traffic-seed S]
//!                                           ... flash-crowd traffic with an
//!                                           attestation-aware autoscaler
//! cllm chaos [--seeds N] [--seed-base S] [--out DIR]
//!                                        deterministic chaos search over the
//!                                        joint config/fault/traffic space;
//!                                        violations shrink to minimal repros
//! cllm chaos --repro FILE                replay a shrunken repro byte-identically
//! cllm <experiment> [--trace out.json]   run one experiment; export its span
//!                                        timeline as Chrome trace-event JSON
//! ```

use cllm_core::experiments::{all_experiments, run_by_id, trace_by_id, TRACEABLE};
use cllm_core::pipeline::{ConfidentialPipeline, DeploymentSpec};
use cllm_cost::{cost_advantage_pct, cost_per_mtok, CpuPricing, GpuPricing};
use cllm_cost::{SpillPenalty, SpotParams};
use cllm_hw::DType;
use cllm_perf::{simulate_gpu, CpuTarget};
use cllm_serve::autoscale::{simulate_autoscale, AutoscaleConfig, ControllerConfig, RentalSpec};
use cllm_serve::cluster::{simulate_cluster, ClusterConfig, NodeSpec, WaveModel};
use cllm_serve::faults::{FaultPlan, FaultRates};
use cllm_serve::invariants;
use cllm_serve::router::{
    AdmissionPolicy, BreakerConfig, BrownoutConfig, RetryBudget, TieredAdmission,
};
use cllm_serve::scheduler::{KvConfig, KvPolicy};
use cllm_serve::sim::{simulate_serving_faulted, ServingConfig, ServingNode};
use cllm_serve::slo::Slo;
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, Platform};
use cllm_workload::phase::RequestSpec;
use cllm_workload::trace::{Tier, TrafficModel};
use cllm_workload::zoo;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        print_usage();
        return ExitCode::from(2);
    };
    let flags = parse_flags(&args[1..]);
    match command {
        "figures" => cmd_figures(args.get(1).filter(|a| !a.starts_with("--")).cloned()),
        "insights" => cmd_insights(),
        "deploy" => cmd_deploy(&flags),
        "estimate" => cmd_estimate(&flags),
        "plan" => cmd_plan(&flags),
        "serve" => cmd_serve(&flags),
        "chaos" => cmd_chaos(&flags),
        "help" | "--help" | "-h" => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            // Experiment ids double as commands: `cllm serving --trace t.json`.
            if all_experiments().iter().any(|(id, _)| *id == other) {
                cmd_experiment(other, &flags)
            } else {
                eprintln!("unknown command: {other}\n");
                print_usage();
                ExitCode::from(2)
            }
        }
    }
}

/// Run one experiment by id, optionally exporting its span trace as
/// Chrome trace-event JSON (`--trace out.json`) with the conservation
/// invariants checked and reported.
fn cmd_experiment(id: &str, flags: &HashMap<String, String>) -> ExitCode {
    let result = run_by_id(id).expect("caller verified the id is registered");
    println!("{}", result.render());
    let Some(path) = flags.get("trace") else {
        return ExitCode::SUCCESS;
    };
    if path.is_empty() {
        eprintln!("--trace needs an output path");
        return ExitCode::from(2);
    }
    let Some(trace) = trace_by_id(id) else {
        eprintln!(
            "experiment {id:?} has no span trace (offline sweep); traceable: {}",
            TRACEABLE.join(", ")
        );
        return ExitCode::from(2);
    };
    let conservation = cllm_obs::check(&trace, 1e-6);
    let json = cllm_obs::chrome_trace_json(&trace);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "trace       : {} spans, {} events across {} lanes -> {path}",
        trace.spans.len(),
        trace.events.len(),
        trace.lane_count()
    );
    if conservation.ok() {
        println!(
            "attribution : ok ({} nodes and {} request chains conserve time)",
            conservation.nodes, conservation.requests
        );
        ExitCode::SUCCESS
    } else {
        for e in &conservation.errors {
            eprintln!("attribution violation: {e}");
        }
        println!(
            "attribution : VIOLATED ({} invariant errors)",
            conservation.errors.len()
        );
        ExitCode::FAILURE
    }
}

fn print_usage() {
    eprintln!(
        "cllm — confidential LLM inference toolkit\n\n\
         usage:\n  cllm figures [id]                 regenerate paper tables/figures\n  \
         cllm insights                     check the paper's 12 insights\n  \
         cllm deploy [--platform P]        attest an enclave and run a demo completion\n  \
         cllm estimate [--platform P] [--dtype bf16|int8] [--batch N] [--input N] [--output N]\n  \
         cllm plan [--batch N] [--input N] cost recommendation: TDX vs confidential H100\n  \
         cllm serve [--rate R] [--platform P] [--duration S]  online SLO report\n  \
         cllm serve --kv-policy conservative|recompute|swap [--kv-block-tokens N]\n\
         \x20          [--kv-pool-gib G]       paged KV cache: admit on prompt pages,\n\
         \x20                                   grow page-by-page, preempt on pressure\n\
         \x20                                   (recompute drops pages, swap prices the\n\
         \x20                                   platform's paging path; default page 16)\n  \
         cllm serve --faults S [--fault-seed N]  ... with a seeded fault schedule\n\
         \x20                                   (S scales the platform's fault rates)\n  \
         cllm serve --nodes SPEC [--failover on|off] [--waves W] [--wave-frac F]\n\
         \x20                                   multi-node cluster with admission control,\n\
         \x20                                   circuit breakers and correlated preemption\n\
         \x20                                   waves; SPEC like 2xcgpu-spot,2xtdx\n  \
         cllm serve --autoscale [--warm-pool N] [--brownout] [--burst-mult M]\n\
         \x20          [--max-rented N] [--traffic-seed S] [--waves [S]]\n\
         \x20                                   flash-crowd traffic (diurnal + bursts,\n\
         \x20                                   free/standard/premium tiers) against a\n\
         \x20                                   reactive autoscaler whose cold starts pay\n\
         \x20                                   the real attested handshake + weight\n\
         \x20                                   unseal; tiered shedding, retry budgets\n\
         \x20                                   and optional brownout degradation\n  \
         cllm chaos [--seeds N] [--seed-base S] [--out DIR]\n\
         \x20                                   deterministic chaos search: sample N\n\
         \x20                                   seeded points of the fleet x fault x\n\
         \x20                                   traffic x KV x controller space, check\n\
         \x20                                   the invariant registry, and shrink any\n\
         \x20                                   violation to a minimal JSON repro\n  \
         cllm chaos --repro FILE           replay a repro byte-identically\n  \
         cllm <experiment> [--trace out.json]   run one experiment; --trace exports the\n\
         \x20                                   span timeline as Chrome trace-event JSON\n\
         \x20                                   (load in chrome://tracing or Perfetto)\n\
         \x20                                   and checks time-conservation invariants\n\n\
         platforms: bare, vm, tdx, sgx, sev-snp, gpu, cgpu\n\
         traceable experiments: serving, resilience, cluster_resilience, time_attribution"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // A following "--flag" is the next flag, not this one's
            // value — presence flags (`--autoscale --warm-pool 2`) must
            // not swallow their successor.
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 2;
                    v.clone()
                }
                _ => {
                    i += 1;
                    String::new()
                }
            };
            flags.insert(key.to_owned(), value);
        } else {
            i += 1;
        }
    }
    flags
}

fn platform_from(flags: &HashMap<String, String>) -> Result<Platform, String> {
    let name = flags.get("platform").map_or("tdx", String::as_str);
    Ok(match name {
        "bare" => Platform::Cpu(CpuTeeConfig::bare_metal()),
        "vm" => Platform::Cpu(CpuTeeConfig::vm()),
        "tdx" => Platform::Cpu(CpuTeeConfig::tdx()),
        "sgx" => Platform::Cpu(CpuTeeConfig::sgx()),
        "sev-snp" | "sev" => Platform::Cpu(CpuTeeConfig::sev_snp()),
        "gpu" => Platform::Gpu(GpuTeeConfig::native()),
        "cgpu" => Platform::Gpu(GpuTeeConfig::confidential()),
        other => return Err(format!("unknown platform {other:?}")),
    })
}

fn num_flag(flags: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// KV-cache flags shared by the single-node and cluster serve paths:
/// `--kv-policy conservative|recompute|swap` and `--kv-block-tokens N`.
fn kv_from(flags: &HashMap<String, String>) -> Result<KvConfig, String> {
    let mut kv = KvConfig::default();
    if let Some(name) = flags.get("kv-policy") {
        kv.policy = KvPolicy::from_flag(name).ok_or_else(|| {
            format!("unknown --kv-policy {name:?}; expected conservative|recompute|swap")
        })?;
    }
    kv.block_tokens = num_flag(flags, "kv-block-tokens", kv.block_tokens).max(1);
    Ok(kv)
}

fn cmd_figures(id: Option<String>) -> ExitCode {
    match id {
        Some(id) => match run_by_id(&id) {
            Some(result) => {
                println!("{}", result.render());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; available: {}",
                    all_experiments()
                        .iter()
                        .map(|(i, _)| *i)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::from(2)
            }
        },
        None => {
            // Full sweep: fan out over the parallel runner; tables still
            // print in paper order. Profiles (wall time + cache hits) go
            // to stderr only — they are host-dependent and must never
            // land in a golden.
            let workers = cllm_core::runner::default_workers();
            let entries = all_experiments();
            let mut failed = false;
            for (_, outcome, profile) in cllm_core::runner::run_entries_profiled(&entries, workers)
            {
                match outcome {
                    Ok(result) => println!("{}", result.render()),
                    Err(e) => {
                        failed = true;
                        eprintln!("{e}");
                    }
                }
                eprintln!("profile: {}", profile.render());
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}

fn cmd_insights() -> ExitCode {
    let summary = cllm_core::summary::build();
    println!("{}", summary.render());
    let ok = summary.confirmed();
    println!("{ok}/12 insights confirmed");
    if ok == 12 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_deploy(flags: &HashMap<String, String>) -> ExitCode {
    let platform = match platform_from(flags) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let spec = DeploymentSpec::tiny_demo(platform);
    match ConfidentialPipeline::deploy(&spec) {
        Ok(pipeline) => {
            println!("platform    : {}", pipeline.spec().platform.label());
            println!("measurement : {}", pipeline.measurement_hex());
            let prompt = flags
                .get("prompt")
                .map_or("confidential inference", String::as_str);
            let out = pipeline.generate(prompt, 24);
            println!("generated   : {} bytes from prompt {prompt:?}", out.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("deployment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_estimate(flags: &HashMap<String, String>) -> ExitCode {
    let platform = match platform_from(flags) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let dtype = match flags.get("dtype").map(String::as_str) {
        Some("int8") => DType::Int8,
        Some("f32") => DType::F32,
        _ => DType::Bf16,
    };
    let req = RequestSpec::new(
        num_flag(flags, "batch", 1),
        num_flag(flags, "input", 1024),
        num_flag(flags, "output", 128),
    );
    let mut spec = DeploymentSpec::tiny_demo(platform);
    spec.dtype = dtype;
    let pipeline = match ConfidentialPipeline::deploy(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("deployment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let est = pipeline.estimate(&req);
    println!(
        "{} | {} | batch {} | {} in / {} out",
        pipeline.spec().platform.label(),
        dtype.label(),
        req.batch,
        req.input_tokens,
        req.output_tokens
    );
    println!("first token : {:.3} s", est.prefill_s);
    println!("per token   : {:.1} ms", est.token_latency_s * 1e3);
    println!("decode rate : {:.1} tok/s", est.decode_tps);
    println!("e2e rate    : {:.1} tok/s", est.e2e_tps);
    ExitCode::SUCCESS
}

fn cmd_plan(flags: &HashMap<String, String>) -> ExitCode {
    let batch = num_flag(flags, "batch", 16);
    let input = num_flag(flags, "input", 512);
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(batch, input, 128);

    let pricing = CpuPricing::gcp_spot_us_east1();
    let mut best: Option<(u32, f64)> = None;
    for cores in [4u32, 8, 16, 32, 48, 60] {
        let target = CpuTarget::emr2_single_socket().with_cores(cores);
        let sim = cllm_perf::simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::tdx());
        let price = pricing.instance_cost_per_hr(cores * 2, 128.0);
        let usd = cost_per_mtok(price, sim.e2e_tps);
        if best.is_none_or(|(_, b)| usd < b) {
            best = Some((cores, usd));
        }
    }
    let (cpu_cores, cpu_usd) = best.expect("nonempty sweep");
    let gpu = cllm_hw::presets::h100_nvl();
    let sim = simulate_gpu(
        &model,
        &req,
        DType::Bf16,
        &gpu,
        &GpuTeeConfig::confidential(),
    );
    let gpu_usd = cost_per_mtok(GpuPricing::azure_ncc_h100().per_hr, sim.e2e_tps);
    let adv = cost_advantage_pct(cpu_usd, gpu_usd);

    println!(
        "shape       : batch {batch}, {input} in / 128 out ({})",
        model.name
    );
    println!("TDX best    : ${cpu_usd:.3}/Mtok at {cpu_cores} cores");
    println!("cGPU        : ${gpu_usd:.3}/Mtok");
    if adv > 5.0 {
        println!("recommend   : TDX ({adv:.0}% cheaper; stricter security model)");
    } else if adv < -5.0 {
        println!(
            "recommend   : cGPU ({:.0}% cheaper; check HBM-encryption threat model)",
            -adv
        );
    } else {
        println!("recommend   : cost parity — decide by security policy (CPU TEE stricter)");
    }
    ExitCode::SUCCESS
}

fn cmd_serve(flags: &HashMap<String, String>) -> ExitCode {
    let rate = flags
        .get("rate")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let duration = flags
        .get("duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let kv = match kv_from(flags) {
        Ok(kv) => kv,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if flags.contains_key("autoscale") {
        return cmd_serve_autoscale(flags, rate, duration);
    }
    if let Some(spec) = flags.get("nodes") {
        return cmd_serve_cluster(flags, spec, rate, duration, kv);
    }
    let tee = match platform_from(flags) {
        Ok(Platform::Cpu(tee)) => tee,
        Ok(Platform::Gpu(_)) => {
            eprintln!("serve simulates CPU platforms; use --platform bare|vm|tdx|sgx|sev-snp");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let fault_scale = flags
        .get("faults")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);
    let fault_seed = num_flag(flags, "fault-seed", 42);
    let plan = if fault_scale > 0.0 {
        let rates = FaultRates::for_platform(tee.kind, &SpotParams::gcp_spot()).scaled(fault_scale);
        FaultPlan::seeded(&rates, duration, fault_seed)
    } else {
        FaultPlan::none()
    };
    let mut cfg = ServingConfig {
        arrivals: ArrivalProcess::chat(rate, 42),
        duration_s: duration,
        kv,
        ..ServingConfig::small_test()
    };
    if let Some(gib) = flags.get("kv-pool-gib").and_then(|v| v.parse::<f64>().ok()) {
        cfg.limits.kv_budget_bytes = gib * cllm_hw::GIB;
    }
    let node = ServingNode::Cpu { tee: tee.clone() };
    let report = simulate_serving_faulted(&cfg, &node, &plan);
    println!(
        "platform {} | rate {rate}/s | {} requests over {duration}s",
        tee.kind.label(),
        report.arrivals
    );
    println!(
        "kv policy   : {} ({} tokens/page)",
        kv.policy.label(),
        kv.block_tokens
    );
    if kv.policy.is_paged() {
        println!(
            "kv pressure : {} preemptions, {:.2} GiB swapped out, {:.2} GiB swapped in",
            report.preemptions,
            report.swap_out_bytes / cllm_hw::GIB,
            report.swap_in_bytes / cllm_hw::GIB
        );
    }
    if fault_scale > 0.0 {
        println!(
            "faults      : {} injected (rate scale {fault_scale}, seed {fault_seed})",
            plan.events.len()
        );
        println!(
            "resilience  : {} retries, {} aborted, availability {:.1}%",
            report.retries,
            report.aborted,
            report.availability * 100.0
        );
        println!(
            "degraded SLO: {:.1}% attainment over all arrivals",
            report.degraded_slo_attainment(Slo::interactive()) * 100.0
        );
    }
    println!("goodput     : {:.1} tok/s", report.goodput_tps);
    println!(
        "TTFT        : p50 {:.2} s, p95 {:.2} s",
        report.ttft_p50_s, report.ttft_p95_s
    );
    println!(
        "TPOT        : p50 {:.0} ms, p95 {:.0} ms",
        report.tpot_p50_s * 1e3,
        report.tpot_p95_s * 1e3
    );
    println!(
        "SLO (2s TTFT, 200ms/token): {:.1}% attainment",
        report.slo_attainment(Slo::interactive()) * 100.0
    );
    let violations = invariants::check_serving(&report);
    if violations.is_empty() {
        println!(
            "conservation : ok ({} arrivals accounted for)",
            report.arrivals
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "conservation : VIOLATED ({})",
            invariants::describe(&violations)
        );
        ExitCode::FAILURE
    }
}

/// `cllm chaos` — deterministic simulation testing.
///
/// Search mode (`--seeds N [--seed-base S] [--out DIR]`): sample N
/// points of the joint fleet x fault x traffic x KV x controller space,
/// run each through the real simulators, and check the unified
/// invariant registry. Any violation is delta-debug-shrunken to a
/// minimal repro and written as JSON (to DIR, or printed). The final
/// summary line folds every report digest, so two invocations with the
/// same seeds must print byte-identical output on any machine or
/// `CLLM_RUNNER_THREADS` setting.
///
/// Replay mode (`--repro FILE`): parse a repro file and demand the
/// recorded digest and violations byte-for-byte.
fn cmd_chaos(flags: &HashMap<String, String>) -> ExitCode {
    use cllm_chaos::run::fnv1a_hex;
    use cllm_chaos::{run_point, sample_point, shrink, Repro};

    if let Some(path) = flags.get("repro") {
        if path.is_empty() {
            eprintln!("--repro needs a file path");
            return ExitCode::from(2);
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let repro = match Repro::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        return match repro.replay() {
            Ok(outcome) => {
                println!(
                    "repro        : ok (digest {}, {} recorded violation(s) reproduced exactly)",
                    outcome.digest,
                    outcome.violations.len()
                );
                for v in &outcome.violations {
                    println!("  {}: {v:?}", v.label());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                println!("repro        : DRIFT ({e})");
                ExitCode::FAILURE
            }
        };
    }

    let seeds = num_flag(flags, "seeds", 24);
    let base = num_flag(flags, "seed-base", 0);
    let out_dir = flags.get("out").filter(|p| !p.is_empty());
    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {dir}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut found = 0usize;
    let mut arrivals = 0usize;
    let mut fold = String::new();
    for seed in base..base + seeds {
        let point = sample_point(seed);
        let outcome = run_point(&point);
        fold.push_str(&outcome.digest);
        arrivals += outcome.arrivals;
        if outcome.violations.is_empty() {
            continue;
        }
        found += 1;
        println!(
            "seed {seed:>6} : VIOLATED ({})",
            invariants::describe(&outcome.violations)
        );
        let (shrunk, shrunk_outcome) = shrink(&point);
        let repro = Repro::capture(shrunk, &shrunk_outcome);
        println!(
            "             shrunken repro: {} fault event(s), digest {}",
            repro_event_count(&repro),
            shrunk_outcome.digest
        );
        if let Some(dir) = out_dir {
            let path = format!("{dir}/repro-seed-{seed}.json");
            if let Err(e) = std::fs::write(&path, repro.to_json()) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("             -> {path}");
        } else {
            println!("{}", repro.to_json());
        }
    }
    println!(
        "chaos        : {} seed(s) from base {}, {} arrival(s) simulated, {} violation(s) | digest {}",
        seeds,
        base,
        arrivals,
        found,
        fnv1a_hex(fold.as_bytes())
    );
    if found == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Total planted fault events across a repro's node lists.
fn repro_event_count(repro: &cllm_chaos::Repro) -> usize {
    use cllm_chaos::point::PathSpec;
    match &repro.point.path {
        PathSpec::Single(p) => p.node.events.len(),
        PathSpec::Cluster(p) => p.nodes.iter().map(|n| n.events.len()).sum(),
        PathSpec::Autoscale(p) => p.base_fleet.iter().map(|n| n.events.len()).sum(),
        PathSpec::Infer(_) => 0,
    }
}

/// Parse a fleet spec like `2xcgpu-spot,2xtdx` into node specs: each
/// comma-separated group is `<count>x<platform>[-spot]`, with platforms
/// named as in `--platform`.
fn parse_fleet(spec: &str, fault_scale: f64, fault_seed: u64) -> Result<Vec<NodeSpec>, String> {
    use cllm_tee::platform::TeeKind;
    let mut nodes = Vec::new();
    for group in spec.split(',') {
        let (count, rest) = group
            .split_once('x')
            .ok_or_else(|| format!("bad node group {group:?}; expected <count>x<platform>"))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("bad node count in {group:?}"))?;
        let (name, spot) = rest
            .strip_suffix("-spot")
            .map_or((rest, false), |base| (base, true));
        let (node, kind) = match name {
            "bare" => (
                ServingNode::Cpu {
                    tee: CpuTeeConfig::bare_metal(),
                },
                TeeKind::BareMetal,
            ),
            "vm" => (
                ServingNode::Cpu {
                    tee: CpuTeeConfig::vm(),
                },
                TeeKind::Vm,
            ),
            "tdx" => (
                ServingNode::Cpu {
                    tee: CpuTeeConfig::tdx(),
                },
                TeeKind::Tdx,
            ),
            "sgx" => (
                ServingNode::Cpu {
                    tee: CpuTeeConfig::sgx(),
                },
                TeeKind::Sgx,
            ),
            "sev-snp" | "sev" => (
                ServingNode::Cpu {
                    tee: CpuTeeConfig::sev_snp(),
                },
                TeeKind::SevSnp,
            ),
            "gpu" => (
                ServingNode::Gpu {
                    gpu: cllm_hw::presets::h100_nvl(),
                    tee: GpuTeeConfig::native(),
                },
                TeeKind::GpuNative,
            ),
            "cgpu" => (
                ServingNode::Gpu {
                    gpu: cllm_hw::presets::h100_nvl(),
                    tee: GpuTeeConfig::confidential(),
                },
                TeeKind::GpuCc,
            ),
            other => return Err(format!("unknown platform {other:?} in {group:?}")),
        };
        let spot_params = match (spot, matches!(node, ServingNode::Gpu { .. })) {
            (true, true) => SpotParams::azure_spot_gpu(),
            (true, false) => SpotParams::gcp_spot(),
            (false, _) => SpotParams::reserved(),
        };
        for _ in 0..count {
            let rates = if fault_scale > 0.0 {
                FaultRates::for_platform(kind, &spot_params).scaled(fault_scale)
            } else {
                FaultRates::none()
            };
            let seed = fault_seed.wrapping_add(nodes.len() as u64);
            nodes.push(NodeSpec::new(node.clone(), spot, rates, seed));
        }
    }
    if nodes.is_empty() {
        return Err(format!("empty fleet spec {spec:?}"));
    }
    Ok(nodes)
}

/// `cllm serve --autoscale`: flash-crowd traffic against a one-node
/// base fleet with a reactive autoscaler renting attested TEE capacity.
fn cmd_serve_autoscale(flags: &HashMap<String, String>, rate: f64, duration: f64) -> ExitCode {
    let (node, kind) = match platform_from(flags) {
        Ok(Platform::Cpu(tee)) => {
            let kind = tee.kind;
            (ServingNode::Cpu { tee }, kind)
        }
        Ok(Platform::Gpu(tee)) => {
            let kind = tee.kind;
            (
                ServingNode::Gpu {
                    gpu: cllm_hw::presets::h100_nvl(),
                    tee,
                },
                kind,
            )
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let burst_mult = flags
        .get("burst-mult")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(10.0);
    let traffic_seed = num_flag(flags, "traffic-seed", 9);
    let mut traffic = TrafficModel::flash_crowd(rate, burst_mult, traffic_seed);
    // Production burst cadence is ~30/hr; a demo-length run needs a
    // denser schedule so a burst actually lands inside the horizon.
    traffic.bursts.bursts_per_hr = 240.0;
    traffic.bursts.window_s = 15.0;
    // `--waves [S]` puts the whole fleet (base + rentals) under
    // spot-class fault pressure scaled by S (default 60, the usual
    // short-horizon compression factor).
    let wave_scale = match flags.get("waves") {
        None => 0.0,
        Some(v) if v.is_empty() => 60.0,
        Some(v) => v.parse::<f64>().unwrap_or(60.0),
    };
    let rates = if wave_scale > 0.0 {
        FaultRates::for_platform(kind, &SpotParams::gcp_spot()).scaled(wave_scale)
    } else {
        FaultRates::none()
    };
    let warm_pool = num_flag(flags, "warm-pool", 0) as usize;
    let cfg = AutoscaleConfig {
        serving: ServingConfig {
            duration_s: duration,
            ..ServingConfig::small_test()
        },
        traffic,
        base_fleet: vec![NodeSpec::new(node.clone(), false, rates, 1)],
        base_price_per_hr: 3.0,
        rental: RentalSpec {
            node,
            rates,
            price_per_hr: 4.0,
            attest_s: 0.5,
            seed: 77,
        },
        warm_pool,
        controller: ControllerConfig {
            control_interval_s: 2.0,
            max_rented: num_flag(flags, "max-rented", 6) as usize,
            ..ControllerConfig::default()
        },
        tiers: TieredAdmission::default(),
        retry: RetryBudget::default(),
        // Demo-scale thresholds: the production default (enter at 256
        // queued) never trips in a 60 s run against a 7-node fleet.
        brownout: flags.contains_key("brownout").then_some(BrownoutConfig {
            enter_depth: 48,
            exit_depth: 16,
            output_cap_tokens: 32,
        }),
        breaker: BreakerConfig::default(),
        spill: SpillPenalty::cross_platform(),
    };
    let r = simulate_autoscale(&cfg);
    println!(
        "autoscale on {} | rate {rate}/s x{burst_mult} bursts | {} requests over {duration}s",
        kind.label(),
        r.arrivals
    );
    println!(
        "fleet        : 1 base + {} rentals ({} warm promotions, {} cold starts, {} scale-downs)",
        r.scale_ups, r.warm_promotions, r.cold_starts, r.scale_downs
    );
    println!(
        "cold starts  : {} attested handshakes + weight unseals ({:.2} s paid, {:.2} s unsealing)",
        r.cold_starts, r.cold_start_s, r.unseal_s
    );
    for tier in Tier::ALL {
        let t = &r.tiers[tier.index()];
        println!(
            "tier {:<8}: {} arrived, {} completed, {} shed, {} aborted, SLO {:.1}%",
            tier.label(),
            t.arrivals,
            t.completed,
            t.shed,
            t.aborted,
            t.slo_attainment() * 100.0
        );
    }
    if cfg.brownout.is_some() {
        println!(
            "brownout     : {} activations, {} output tokens trimmed",
            r.brownout_activations, r.tokens_trimmed
        );
    }
    println!(
        "retries      : {} delivered, {} storm drops, {} aborted",
        r.retries, r.storm_drops, r.aborted
    );
    println!("goodput      : {:.1} tok/s delivered", r.goodput_tps);
    println!(
        "TTFT         : p50 {:.2} s, p99 {:.2} s, burst p99 {:.2} s",
        r.ttft_p50_s, r.ttft_p99_s, r.ttft_p99_burst_s
    );
    println!(
        "cost         : ${:.4} total (${:.4} rental, ${:.4} warm pool, ${:.4} base) -> ${:.2}/Mtok delivered",
        r.total_cost_usd, r.rental_cost_usd, r.warm_pool_cost_usd, r.base_cost_usd, r.usd_per_mtok
    );
    let violations = invariants::check_autoscale(&r);
    if violations.is_empty() {
        println!(
            "conservation : ok ({} completed + {} shed + {} aborted == {} arrivals)",
            r.completed, r.shed, r.aborted, r.arrivals
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "conservation : VIOLATED ({})",
            invariants::describe(&violations)
        );
        ExitCode::FAILURE
    }
}

fn cmd_serve_cluster(
    flags: &HashMap<String, String>,
    spec: &str,
    rate: f64,
    duration: f64,
    kv: KvConfig,
) -> ExitCode {
    let fault_scale = flags
        .get("faults")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);
    let fault_seed = num_flag(flags, "fault-seed", 42);
    let nodes = match parse_fleet(spec, fault_scale, fault_seed) {
        Ok(nodes) => nodes,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let failover = match flags.get("failover").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            eprintln!("bad --failover {other:?}; expected on|off");
            return ExitCode::from(2);
        }
    };
    let waves_per_hr = flags
        .get("waves")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);
    let wave_frac = flags
        .get("wave-frac")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.75);
    let n_nodes = nodes.len();
    let cfg = ClusterConfig {
        serving: ServingConfig {
            arrivals: ArrivalProcess::chat(rate, 42),
            duration_s: duration,
            kv,
            ..ServingConfig::small_test()
        },
        nodes,
        admission: AdmissionPolicy::default(),
        breaker: BreakerConfig::default(),
        wave: WaveModel {
            waves_per_hr,
            frac: wave_frac,
            seed: fault_seed,
        },
        failover,
        spill: SpillPenalty::cross_platform(),
    };
    let report = simulate_cluster(&cfg);
    println!(
        "fleet {spec} | {n_nodes} nodes | rate {rate}/s | {} requests over {duration}s",
        report.arrivals
    );
    println!(
        "failover     : {} | waves {waves_per_hr}/hr hitting {:.0}% of spot nodes (seed {fault_seed})",
        if failover { "on" } else { "off" },
        wave_frac * 100.0
    );
    println!(
        "terminal     : {} completed, {} rejected, {} aborted",
        report.completed, report.rejected, report.aborted
    );
    println!(
        "failover work: {} retries, {} cross-platform spills",
        report.retries, report.spills
    );
    if kv.policy.is_paged() {
        println!(
            "kv pressure  : {} preemptions ({}), {:.2} GiB swapped out, {:.2} GiB swapped in",
            report.preemptions,
            kv.policy.label(),
            report.swap_out_bytes / cllm_hw::GIB,
            report.swap_in_bytes / cllm_hw::GIB
        );
    }
    println!("availability : {:.1}%", report.availability * 100.0);
    println!("goodput      : {:.1} tok/s", report.goodput_tps);
    println!(
        "TTFT         : p50 {:.2} s, p99 {:.2} s",
        report.ttft_p50_s, report.ttft_p99_s
    );
    for (i, n) in report.nodes.iter().enumerate() {
        println!(
            "node {i}       : {} completed | availability {:.1}% | breaker {} trips / {} closes | queue peak {}",
            n.completed,
            n.availability * 100.0,
            n.breaker_trips,
            n.breaker_closes,
            n.queue_depth_peak
        );
    }
    let violations = invariants::check_cluster(&report);
    if violations.is_empty() {
        println!(
            "conservation : ok ({} arrivals accounted for)",
            report.arrivals
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "conservation : VIOLATED ({})",
            invariants::describe(&violations)
        );
        ExitCode::FAILURE
    }
}
