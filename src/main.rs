//! `cllm` — command-line interface to the confidential-LLM toolkit.
//!
//! ```text
//! cllm figures [id]                      regenerate paper tables/figures
//! cllm insights                          check the paper's 12 insights
//! cllm deploy [--platform P]             attest + generate a demo completion
//! cllm estimate [--platform P] [...]     predict perf for a request shape
//! cllm plan [--batch N] [--input N]      CPU-vs-cGPU cost recommendation
//! cllm serve [--rate R] [--platform P]   online serving SLO report
//!            [--faults S] [--fault-seed N]  ... under an injected fault schedule
//! ```

use cllm_core::experiments::{all_experiments, run_by_id};
use cllm_core::pipeline::{ConfidentialPipeline, DeploymentSpec};
use cllm_cost::SpotParams;
use cllm_cost::{cost_advantage_pct, cost_per_mtok, CpuPricing, GpuPricing};
use cllm_hw::DType;
use cllm_perf::{simulate_gpu, CpuTarget};
use cllm_serve::faults::{FaultPlan, FaultRates};
use cllm_serve::sim::{simulate_serving_faulted, ServingConfig, ServingNode};
use cllm_serve::slo::Slo;
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, Platform};
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        print_usage();
        return ExitCode::from(2);
    };
    let flags = parse_flags(&args[1..]);
    match command {
        "figures" => cmd_figures(args.get(1).filter(|a| !a.starts_with("--")).cloned()),
        "insights" => cmd_insights(),
        "deploy" => cmd_deploy(&flags),
        "estimate" => cmd_estimate(&flags),
        "plan" => cmd_plan(&flags),
        "serve" => cmd_serve(&flags),
        "help" | "--help" | "-h" => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "cllm — confidential LLM inference toolkit\n\n\
         usage:\n  cllm figures [id]                 regenerate paper tables/figures\n  \
         cllm insights                     check the paper's 12 insights\n  \
         cllm deploy [--platform P]        attest an enclave and run a demo completion\n  \
         cllm estimate [--platform P] [--dtype bf16|int8] [--batch N] [--input N] [--output N]\n  \
         cllm plan [--batch N] [--input N] cost recommendation: TDX vs confidential H100\n  \
         cllm serve [--rate R] [--platform P] [--duration S]  online SLO report\n  \
         cllm serve --faults S [--fault-seed N]  ... with a seeded fault schedule\n\
         \x20                                   (S scales the platform's fault rates)\n\n\
         platforms: bare, vm, tdx, sgx, sev-snp, gpu, cgpu"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(key.to_owned(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn platform_from(flags: &HashMap<String, String>) -> Result<Platform, String> {
    let name = flags.get("platform").map_or("tdx", String::as_str);
    Ok(match name {
        "bare" => Platform::Cpu(CpuTeeConfig::bare_metal()),
        "vm" => Platform::Cpu(CpuTeeConfig::vm()),
        "tdx" => Platform::Cpu(CpuTeeConfig::tdx()),
        "sgx" => Platform::Cpu(CpuTeeConfig::sgx()),
        "sev-snp" | "sev" => Platform::Cpu(CpuTeeConfig::sev_snp()),
        "gpu" => Platform::Gpu(GpuTeeConfig::native()),
        "cgpu" => Platform::Gpu(GpuTeeConfig::confidential()),
        other => return Err(format!("unknown platform {other:?}")),
    })
}

fn num_flag(flags: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_figures(id: Option<String>) -> ExitCode {
    match id {
        Some(id) => match run_by_id(&id) {
            Some(result) => {
                println!("{}", result.render());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; available: {}",
                    all_experiments()
                        .iter()
                        .map(|(i, _)| *i)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::from(2)
            }
        },
        None => {
            // Full sweep: fan out over the parallel runner; tables still
            // print in paper order.
            let workers = cllm_core::runner::default_workers();
            for result in cllm_core::runner::run_all_parallel(workers) {
                println!("{}", result.render());
            }
            ExitCode::SUCCESS
        }
    }
}

fn cmd_insights() -> ExitCode {
    let summary = cllm_core::summary::build();
    println!("{}", summary.render());
    let ok = summary.confirmed();
    println!("{ok}/12 insights confirmed");
    if ok == 12 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_deploy(flags: &HashMap<String, String>) -> ExitCode {
    let platform = match platform_from(flags) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let spec = DeploymentSpec::tiny_demo(platform);
    match ConfidentialPipeline::deploy(&spec) {
        Ok(pipeline) => {
            println!("platform    : {}", pipeline.spec().platform.label());
            println!("measurement : {}", pipeline.measurement_hex());
            let prompt = flags
                .get("prompt")
                .map_or("confidential inference", String::as_str);
            let out = pipeline.generate(prompt, 24);
            println!("generated   : {} bytes from prompt {prompt:?}", out.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("deployment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_estimate(flags: &HashMap<String, String>) -> ExitCode {
    let platform = match platform_from(flags) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let dtype = match flags.get("dtype").map(String::as_str) {
        Some("int8") => DType::Int8,
        Some("f32") => DType::F32,
        _ => DType::Bf16,
    };
    let req = RequestSpec::new(
        num_flag(flags, "batch", 1),
        num_flag(flags, "input", 1024),
        num_flag(flags, "output", 128),
    );
    let mut spec = DeploymentSpec::tiny_demo(platform);
    spec.dtype = dtype;
    let pipeline = match ConfidentialPipeline::deploy(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("deployment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let est = pipeline.estimate(&req);
    println!(
        "{} | {} | batch {} | {} in / {} out",
        pipeline.spec().platform.label(),
        dtype.label(),
        req.batch,
        req.input_tokens,
        req.output_tokens
    );
    println!("first token : {:.3} s", est.prefill_s);
    println!("per token   : {:.1} ms", est.token_latency_s * 1e3);
    println!("decode rate : {:.1} tok/s", est.decode_tps);
    println!("e2e rate    : {:.1} tok/s", est.e2e_tps);
    ExitCode::SUCCESS
}

fn cmd_plan(flags: &HashMap<String, String>) -> ExitCode {
    let batch = num_flag(flags, "batch", 16);
    let input = num_flag(flags, "input", 512);
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(batch, input, 128);

    let pricing = CpuPricing::gcp_spot_us_east1();
    let mut best: Option<(u32, f64)> = None;
    for cores in [4u32, 8, 16, 32, 48, 60] {
        let target = CpuTarget::emr2_single_socket().with_cores(cores);
        let sim = cllm_perf::simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::tdx());
        let price = pricing.instance_cost_per_hr(cores * 2, 128.0);
        let usd = cost_per_mtok(price, sim.e2e_tps);
        if best.is_none_or(|(_, b)| usd < b) {
            best = Some((cores, usd));
        }
    }
    let (cpu_cores, cpu_usd) = best.expect("nonempty sweep");
    let gpu = cllm_hw::presets::h100_nvl();
    let sim = simulate_gpu(
        &model,
        &req,
        DType::Bf16,
        &gpu,
        &GpuTeeConfig::confidential(),
    );
    let gpu_usd = cost_per_mtok(GpuPricing::azure_ncc_h100().per_hr, sim.e2e_tps);
    let adv = cost_advantage_pct(cpu_usd, gpu_usd);

    println!(
        "shape       : batch {batch}, {input} in / 128 out ({})",
        model.name
    );
    println!("TDX best    : ${cpu_usd:.3}/Mtok at {cpu_cores} cores");
    println!("cGPU        : ${gpu_usd:.3}/Mtok");
    if adv > 5.0 {
        println!("recommend   : TDX ({adv:.0}% cheaper; stricter security model)");
    } else if adv < -5.0 {
        println!(
            "recommend   : cGPU ({:.0}% cheaper; check HBM-encryption threat model)",
            -adv
        );
    } else {
        println!("recommend   : cost parity — decide by security policy (CPU TEE stricter)");
    }
    ExitCode::SUCCESS
}

fn cmd_serve(flags: &HashMap<String, String>) -> ExitCode {
    let rate = flags
        .get("rate")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let duration = flags
        .get("duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let tee = match platform_from(flags) {
        Ok(Platform::Cpu(tee)) => tee,
        Ok(Platform::Gpu(_)) => {
            eprintln!("serve simulates CPU platforms; use --platform bare|vm|tdx|sgx|sev-snp");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let fault_scale = flags
        .get("faults")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);
    let fault_seed = num_flag(flags, "fault-seed", 42);
    let plan = if fault_scale > 0.0 {
        let rates = FaultRates::for_platform(tee.kind, &SpotParams::gcp_spot()).scaled(fault_scale);
        FaultPlan::seeded(&rates, duration, fault_seed)
    } else {
        FaultPlan::none()
    };
    let cfg = ServingConfig {
        arrivals: ArrivalProcess::chat(rate, 42),
        duration_s: duration,
        ..ServingConfig::small_test()
    };
    let node = ServingNode::Cpu { tee: tee.clone() };
    let report = simulate_serving_faulted(&cfg, &node, &plan);
    println!(
        "platform {} | rate {rate}/s | {} requests over {duration}s",
        tee.kind.label(),
        report.arrivals
    );
    if fault_scale > 0.0 {
        println!(
            "faults      : {} injected (rate scale {fault_scale}, seed {fault_seed})",
            plan.events.len()
        );
        println!(
            "resilience  : {} retries, {} aborted, availability {:.1}%",
            report.retries,
            report.aborted,
            report.availability * 100.0
        );
        println!(
            "degraded SLO: {:.1}% attainment over all arrivals",
            report.degraded_slo_attainment(Slo::interactive()) * 100.0
        );
    }
    println!("goodput     : {:.1} tok/s", report.goodput_tps);
    println!(
        "TTFT        : p50 {:.2} s, p95 {:.2} s",
        report.ttft_p50_s, report.ttft_p95_s
    );
    println!(
        "TPOT        : p50 {:.0} ms, p95 {:.0} ms",
        report.tpot_p50_s * 1e3,
        report.tpot_p95_s * 1e3
    );
    println!(
        "SLO (2s TTFT, 200ms/token): {:.1}% attainment",
        report.slo_attainment(Slo::interactive()) * 100.0
    );
    ExitCode::SUCCESS
}
