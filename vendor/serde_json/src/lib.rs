//! Offline vendored stand-in for `serde_json`.
//!
//! Provides the surface this workspace uses — [`Value`], [`to_value`],
//! [`to_string`], [`to_string_pretty`], [`from_str`] and an [`Error`]
//! convertible to `std::io::Error` — implemented over the simplified
//! `serde::Content` data model of the vendored `serde` crate.
//!
//! Output formatting follows serde_json conventions: compact form with
//! `":"`/`","` separators, pretty form with two-space indentation.
//! Object keys keep insertion order (struct field order), so output is
//! deterministic and stable across runs — a property the parallel
//! experiment runner's byte-identity test relies on.

use serde::{Content, Deserialize, Serialize};

/// A JSON number: unsigned, signed-negative, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The value as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(v) => *v as f64,
            Number::NegInt(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }
}

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow as `&str` if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Convert to `f64` if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrow as an array if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::Number(Number::PosInt(*v)),
            Content::I64(v) => Value::Number(Number::NegInt(*v)),
            Content::F64(v) => Value::Number(Number::Float(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(fields) => Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::PosInt(v)) => Content::U64(*v),
            Value::Number(Number::NegInt(v)) => Content::I64(*v),
            Value::Number(Number::Float(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content).collect()),
            Value::Object(fields) => Content::Map(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        Value::to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, serde::DeError> {
        Ok(Value::from_content(c))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(Value::from_content(&value.to_content()))
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content());
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content());
    let mut out = String::new();
    write_value(&mut out, &v, Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_content(&value.to_content())?)
}

// ---- writer ---------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                let s = v.to_string();
                out.push_str(&s);
                // serde_json always marks floats as such; keep integral
                // floats distinguishable from integers on re-parse.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/inf; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(ind) = indent {
                    out.push('\n');
                    out.push_str(&ind.repeat(level + 1));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(ind) = indent {
                out.push('\n');
                out.push_str(&ind.repeat(level));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(ind) = indent {
                    out.push('\n');
                    out.push_str(&ind.repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(ind) = indent {
                out.push('\n');
                out.push_str(&ind.repeat(level));
            }
            out.push('}');
        }
    }
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<i64>().is_ok() {
                    return Ok(Value::Number(Number::NegInt(text.parse().unwrap())));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("fig4".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::Number(Number::PosInt(1))]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("x".into(), Value::Number(Number::Float(1.5))),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"id":"fig4","rows":[1],"ok":true,"x":1.5}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Null]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    null\n  ]\n}");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".into());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let mut out = String::new();
        write_number(&mut out, &Number::Float(3.0));
        assert_eq!(out, "3.0");
    }

    #[test]
    fn big_u64_exact() {
        let v = Value::Number(Number::PosInt(u64::MAX));
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
