//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), [`Strategy`] over ranges / tuples /
//! [`Just`] / [`prop_oneof!`] unions / [`any`] / `collection::vec`, and
//! the `prop_assert*` family.
//!
//! Cases are generated from a deterministic per-test RNG seeded by the
//! test's module path and name, so failures reproduce exactly on re-run.
//! Shrinking and regression-file persistence are not implemented; failing
//! cases print their generated inputs via the assertion message instead.

pub use rand::rngs::StdRng;
use rand::RngExt;
pub use rand::SeedableRng;

/// Runner configuration (`cases` is the only knob this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a hash of a test path — the deterministic per-test seed.
#[must_use]
pub fn seed_for(path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy box used by [`prop_oneof!`].
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe mirror of [`Strategy`].
pub trait DynStrategy<T> {
    /// Generate one value.
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one arm.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate_dyn(rng)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_range_noinc {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range_noinc!(i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in a range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.random_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property (plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each function runs `cases` times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Green,
        Blue,
    }

    fn color() -> impl Strategy<Value = Color> {
        prop_oneof![Just(Color::Red), Just(Color::Green), Just(Color::Blue)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 1u64..64, b in 0.25f64..4.0) {
            prop_assert!((1..64).contains(&a));
            prop_assert!((0.25..4.0).contains(&b));
        }

        #[test]
        fn oneof_hits_all(c in color()) {
            prop_assert!(matches!(c, Color::Red | Color::Green | Color::Blue));
        }

        #[test]
        fn vectors_sized(v in collection::vec(any::<u8>(), 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }

        #[test]
        fn tuples_and_assume((x, y) in (0u32..100, 0u32..100)) {
            prop_assume!(x != y);
            prop_assert_ne!(x, y);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = StdRng::seed_from_u64(seed_for("t"));
        let mut b = StdRng::seed_from_u64(seed_for("t"));
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    use crate::{seed_for, SeedableRng, StdRng};
}
