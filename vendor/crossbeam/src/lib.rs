//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 call shape
//! (`scope(|s| ...) -> Result<R>`, `s.spawn(|_| ...)`), implemented on
//! top of `std::thread::scope` (stable since Rust 1.63). Only the scoped
//! thread API this workspace's parallel experiment runner uses is
//! included.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope: the panic value of the first
    /// panicking thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// A scope in which threads borrowing local state can be spawned.
    pub struct Scope<'env, 'scope_ref> {
        inner: &'scope_ref std::thread::Scope<'scope_ref, 'env>,
    }

    impl<'env, 'scope_ref> Scope<'env, 'scope_ref> {
        /// Spawn a scoped thread. The closure receives `&Scope` for
        /// crossbeam signature compatibility (nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope_ref, T>
        where
            F: FnOnce(&Scope<'env, 'scope_ref>) -> T + Send + 'scope_ref,
            T: Send + 'scope_ref,
            'env: 'scope_ref,
        {
            let reborrow = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&reborrow)),
            }
        }
    }

    /// Create a scope; all threads spawned within are joined before it
    /// returns. Returns `Err` with the panic payload if the closure or
    /// any un-joined thread panicked (crossbeam 0.8 semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope_ref> FnOnce(&Scope<'env, 'scope_ref>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            let out = super::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
                    .len()
            })
            .unwrap();
            assert_eq!(out, 8);
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
