//! Offline vendored stand-in for `rand`.
//!
//! Provides the exact surface this workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension trait with
//! `random::<T>()` / `random_range(..)`. The generator is xoshiro256++
//! seeded via SplitMix64 — deterministic, high quality, and identical on
//! every platform, which the simulator's reproducibility tests rely on.
//!
//! The streams differ from the real `rand::rngs::StdRng` (ChaCha12); the
//! simulator only requires determinism, not a specific stream, and its
//! calibration is tested against paper bands rather than fixed samples.

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a value of type `Self` from full bit patterns.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Sample uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Extension methods every generator gets (mirrors `rand::Rng`/`RngExt`).
pub trait RngExt: RngCore {
    /// Sample a value of type `T` uniformly from its standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = rng.random_range(0usize..5);
            assert!(u < 5);
            let x = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
