//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually contains — non-generic structs (named,
//! tuple, unit) and enums (unit, tuple and struct variants) — without
//! `syn`/`quote`, by walking the raw [`proc_macro::TokenStream`] and
//! emitting impls of the simplified `serde::Serialize`/`serde::Deserialize`
//! traits defined in the vendored `serde` crate.
//!
//! Encoding matches serde's JSON defaults: structs are maps keyed by field
//! name, newtype structs are transparent, tuple structs/variants are
//! sequences, unit variants are strings, and payload variants are
//! externally tagged (`{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Count items separated by top-level commas, ignoring commas nested in
/// `<...>` (angle brackets are not token groups) or delimiter groups.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut items = 0;
    let mut saw_tokens = false;
    let mut prev_dash = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    ',' if depth == 0 => {
                        items += 1;
                        saw_tokens = false;
                        prev_dash = false;
                        continue;
                    }
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            }
            _ => prev_dash = false,
        }
        saw_tokens = true;
    }
    if saw_tokens {
        items += 1;
    }
    items
}

/// Parse `{ field: Type, ... }` contents into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and doc comments.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the [...] group
                }
                _ => break,
            }
        }
        // Skip visibility.
        match iter.peek() {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => {}
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        fields.push(name.to_string());
        // Expect ':' then consume the type until a top-level ','.
        let mut depth: i32 = 0;
        let mut prev_dash = false;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) => {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' if !prev_dash => depth -= 1,
                        ',' if depth == 0 => break,
                        _ => {}
                    }
                    prev_dash = p.as_char() == '-';
                }
                _ => prev_dash = false,
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and doc comments.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                iter.next();
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                iter.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
        // Skip any discriminant and the trailing comma.
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: unexpected token {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_items(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive stub: expected enum body, got {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Content::Null".to_owned(),
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push(format!(
                        "{name}::{vname} => ::serde::Content::Str(String::from(\"{vname}\")),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_content(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push(format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![(String::from(\"{vname}\"), {payload})]),",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(vec![(String::from(\"{vname}\"), ::serde::Content::Map(vec![{}]))]),",
                            fields.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ match self {{ {} }} }}\n}}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_content(__seq.get({i}).ok_or_else(|| ::serde::DeError::new(\"sequence too short for {name}\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __seq = __c.as_seq().ok_or_else(|| ::serde::DeError::new(\"expected sequence for {name}\"))?;\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(::serde::Content::field(__map, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __map = __c.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for {name}\"))?;\n\
                         Ok({name} {{ {} }})",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(__c: &::serde::Content) -> Result<Self, ::serde::DeError> {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push(format!("\"{vname}\" => Ok({name}::{vname}),"));
                    }
                    Fields::Tuple(1) => payload_arms.push(format!(
                        "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_content(__v)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_content(__seq.get({i}).ok_or_else(|| ::serde::DeError::new(\"variant sequence too short\"))?)?"
                                )
                            })
                            .collect();
                        payload_arms.push(format!(
                            "\"{vname}\" => {{ let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError::new(\"expected sequence variant\"))?; Ok({name}::{vname}({})) }},",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(::serde::Content::field(__m, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        payload_arms.push(format!(
                            "\"{vname}\" => {{ let __m = __v.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map variant\"))?; Ok({name}::{vname} {{ {} }}) }},",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(__c: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                 match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit}\n_ => Err(::serde::DeError::new(format!(\"unknown variant `{{__s}}` of {name}\"))) }},\n\
                 ::serde::Content::Map(__m0) if __m0.len() == 1 => {{\n\
                 let (__tag, __v) = &__m0[0];\n\
                 let _ = __v;\n\
                 match __tag.as_str() {{\n{payload}\n_ => Err(::serde::DeError::new(format!(\"unknown variant `{{__tag}}` of {name}\"))) }}\n}},\n\
                 _ => Err(::serde::DeError::new(\"expected variant for {name}\")),\n\
                 }}\n}}\n}}",
                unit = unit_arms.join("\n"),
                payload = payload_arms.join("\n")
            )
        }
    }
}

/// Derive `serde::Serialize` (vendored data-model form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (vendored data-model form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}
