//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access and an empty cargo
//! registry, so the real `serde` cannot be fetched. This crate provides
//! the exact surface the workspace uses — `#[derive(Serialize,
//! Deserialize)]` plus trait bounds consumed by the vendored
//! `serde_json` — over a simplified self-describing data model
//! ([`Content`]) instead of the visitor-based serde core.
//!
//! The derive macros live in the sibling `serde_derive` proc-macro crate
//! and generate impls of [`Serialize`]/[`Deserialize`] below. Field
//! names, enum variant tags and the externally-tagged enum encoding all
//! match serde's defaults, so JSON produced through `serde_json`
//! round-trips the same way the real stack would.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized form: the intermediate every
/// [`Serialize`] impl produces and every [`Deserialize`] impl consumes.
///
/// Mirrors the JSON data model (this workspace only serializes to/from
/// JSON). Unsigned and signed integers are kept apart so `u64` values
/// above 2^53 survive a round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also `None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, `Vec`).
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order (struct fields).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrow as a map, if this is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a struct field in a map, erroring with the field name.
    pub fn field<'a>(map: &'a [(String, Content)], name: &str) -> Result<&'a Content, DeError> {
        map.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from a message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be serialized into [`Content`].
pub trait Serialize {
    /// Convert to the self-describing form.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from [`Content`].
pub trait Deserialize: Sized {
    /// Reconstruct from the self-describing form.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(DeError::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        u64::from_content(c)
            .and_then(|v| usize::try_from(v).map_err(|_| DeError::new("usize out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide: i64 = match c {
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    Content::I64(v) => *v,
                    _ => return Err(DeError::new(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(wide).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_content(&self) -> Content {
        (*self as i64).to_content()
    }
}
impl Deserialize for isize {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        i64::from_content(c)
            .and_then(|v| isize::try_from(v).map_err(|_| DeError::new("isize out of range")))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            _ => Err(DeError::new("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// ---- composite impls ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Vec::from_content(c)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| DeError::new("expected tuple sequence"))?;
                Ok(($($name::from_content(
                    seq.get($idx).ok_or_else(|| DeError::new("tuple too short"))?)?,)+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        let s = String::from("hello");
        assert_eq!(String::from_content(&s.to_content()).unwrap(), s);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
    }

    #[test]
    fn arrays_and_options() {
        let a: [u8; 4] = [1, 2, 3, 4];
        assert_eq!(<[u8; 4]>::from_content(&a.to_content()).unwrap(), a);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::from_content(&none.to_content()).unwrap(),
            None
        );
        assert_eq!(
            Option::<u32>::from_content(&Some(9u32).to_content()).unwrap(),
            Some(9)
        );
    }

    #[test]
    fn large_u64_survives() {
        let v = u64::MAX - 1;
        assert_eq!(u64::from_content(&v.to_content()).unwrap(), v);
    }
}
