//! Offline vendored stand-in for `criterion`.
//!
//! Supports the bench surface this workspace uses: `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size`,
//! `warm_up_time`, `measurement_time`, `finish`), `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple median-of-samples wall clock — enough to compare runs locally;
//! no statistics, plots or saved baselines.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    per_sample: Duration,
    /// Median ns/iter of the last `iter` call.
    result_ns: f64,
}

impl Bencher {
    /// Measure a closure: several timed samples, each running the closure
    /// enough times to fill the per-sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in the per-sample budget?
        let probe_start = Instant::now();
        black_box(f());
        let one = probe_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample = (self.per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            per_iter_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_ns = per_iter_ns[per_iter_ns.len() / 2];
    }
}

fn run_one(name: &str, samples: usize, per_sample: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        per_sample,
        result_ns: f64::NAN,
    };
    f(&mut b);
    if b.result_ns.is_finite() {
        println!("{name:<40} {:>14.1} ns/iter", b.result_ns);
    } else {
        println!("{name:<40} (no measurement)");
    }
}

/// Benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Run a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            name,
            self.sample_size,
            self.measurement_time / self.sample_size as u32,
            &mut f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Warm-up budget (accepted for API compatibility; warm-up is the
    /// calibration probe).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Run a named benchmark inside the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let total = self
            .measurement_time
            .unwrap_or(self.parent.measurement_time);
        run_one(name.as_ref(), samples, total / samples as u32, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        group.bench_function(String::from("dyn"), |b| b.iter(|| 2 * 2));
        group.finish();
    }
}
